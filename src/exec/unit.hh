/**
 * @file
 * Pipelined execution-unit cluster model.
 *
 * One ExecUnit models one *gateable domain*: a 16-lane SIMT cluster that
 * accepts one warp instruction per initiation interval (the 16 CUDA
 * cores run at 2x clock, so a 32-thread warp occupies the cluster for a
 * single issue cycle — exactly the GTX480 arrangement in the paper).
 * The SM instantiates two INT clusters, two FP clusters (SP0/SP1), one
 * LD/ST pipeline and one SFU pipeline.
 *
 * The unit separates *occupancy* (cycles the silicon is actually
 * switching, which drives busy/idle detection for power gating) from
 * *result availability* (when the scoreboard learns the value is ready;
 * for loads this is whenever the memory system returns the data, long
 * after the LD/ST pipeline itself went idle).
 */

#pragma once

#include <cstdint>
#include <queue>
#include <string>
#include <vector>

#include "arch/instr.hh"
#include "common/types.hh"

namespace wg {

/** Static configuration of one execution unit. */
struct ExecUnitConfig
{
    Cycle latency = 4;             ///< result latency (ALU default 4)
    Cycle initiationInterval = 1;  ///< min cycles between issues
    Cycle occupancy = 0;           ///< pipeline-occupancy cycles;
                                   ///< 0 means "same as latency"
};

/** A value (or store) finishing execution. */
struct Completion
{
    Cycle done;         ///< cycle the result becomes visible
    WarpId warp;        ///< producing warp
    RegId dest;         ///< destination register (kNoReg for stores)
    bool longLatency;   ///< true for global-miss loads
};

/**
 * Checkpoint state of one execution unit. The two heaps are captured
 * as sorted vectors (occupancy ascending; completions by (done, warp,
 * dest, longLatency)) so identical simulator states serialize to
 * identical bytes regardless of heap layout history.
 */
struct ExecUnitState {
    Cycle lastIssue = kNeverCycle;      ///< initiation-interval anchor
    std::uint64_t issues = 0;           ///< lifetime issue count
    std::vector<Cycle> occupancy;       ///< occupancy-end cycles
    std::vector<Completion> completions; ///< in-flight results
};

/**
 * One pipelined cluster. The SM drives it with issue() and tick();
 * the power-gating controller observes busy().
 */
class ExecUnit
{
  public:
    /**
     * @param cls unit class this cluster executes
     * @param index cluster index within its class (0 or 1 for INT/FP)
     */
    ExecUnit(UnitClass cls, unsigned index, const ExecUnitConfig& config);

    /** @return true when the issue port is free this cycle. */
    bool canAccept(Cycle now) const;

    /**
     * Issue a warp instruction.
     * @param now issue cycle (canAccept(now) must hold)
     * @param complete cycle the result is visible (scoreboard clear)
     * @param warp issuing warp
     * @param dest destination register or kNoReg
     * @param long_latency marks global-miss loads
     */
    void issue(Cycle now, Cycle complete, WarpId warp, RegId dest,
               bool long_latency);

    /** Retire finished occupancy slots; call once per cycle. */
    void
    tick(Cycle now)
    {
        while (!occupancy_.empty() && occupancy_.top() <= now)
            occupancy_.pop();
    }

    /** @return true while any instruction occupies the pipeline. */
    bool busy() const { return !occupancy_.empty(); }

    /**
     * First future cycle at which this unit's externally visible state
     * changes on its own: an occupancy slot retires (busy() flips) or a
     * completion becomes drainable. kNeverCycle when the unit is fully
     * drained. Used by the event-horizon fast-forward to bound how far
     * the SM may skip.
     */
    Cycle
    nextEventCycle() const
    {
        Cycle e = kNeverCycle;
        if (!occupancy_.empty())
            e = occupancy_.top();
        if (!completions_.empty() && completions_.top().done < e)
            e = completions_.top().done;
        return e;
    }

    /**
     * First future cycle a completion becomes drainable, ignoring
     * occupancy retires. The LD/ST pipeline's busy flag feeds nothing
     * but a stats counter (no PG domain, not a pg.tick input), so the
     * untraced fast-forward bounds its horizon with this instead of
     * nextEventCycle() and replays the busy cycles via busyUntil().
     */
    Cycle
    nextCompletionCycle() const
    {
        return completions_.empty() ? kNeverCycle
                                    : completions_.top().done;
    }

    /**
     * Cycle at which busy() flips to false if nothing more issues
     * (0 when already idle). Occupancy ends are issue + occupancy with
     * monotonically increasing issue cycles, so the latest end is the
     * last issue's.
     */
    Cycle
    busyUntil() const
    {
        return occupancy_.empty() ? 0
                                  : last_issue_ + config_.occupancy;
    }

    /**
     * First cycle the issue port accepts again (0 when it already
     * does). Unlike nextEventCycle() this is not a state change — the
     * port "frees" purely as a function of time — but the fast-forward
     * must stop there when a ready instruction is waiting on the port,
     * because the issue that follows is one.
     */
    Cycle
    portFreeCycle() const
    {
        return last_issue_ == kNeverCycle
                   ? 0
                   : last_issue_ + config_.initiationInterval;
    }

    /** Move completions due at or before @p now into @p out. */
    void
    drainCompletions(Cycle now, std::vector<Completion>& out)
    {
        while (!completions_.empty() && completions_.top().done <= now) {
            out.push_back(completions_.top());
            completions_.pop();
        }
    }

    UnitClass unitClass() const { return class_; }
    unsigned index() const { return index_; }
    const std::string& name() const { return name_; }

    /** Total instructions issued to this cluster. */
    std::uint64_t issueCount() const { return issues_; }

    /** @return configured result latency. */
    Cycle latency() const { return config_.latency; }

    /** Capture heap contents + issue bookkeeping for a checkpoint. */
    ExecUnitState saveState() const;

    /** Rebuild the unit mid-flight from a captured ExecUnitState. */
    void restoreState(const ExecUnitState& s);

  private:
    UnitClass class_;
    unsigned index_;
    ExecUnitConfig config_;
    std::string name_;

    Cycle last_issue_ = kNeverCycle; ///< for initiation-interval check
    std::uint64_t issues_ = 0;

    /** Min-heap of occupancy-end cycles. */
    std::priority_queue<Cycle, std::vector<Cycle>, std::greater<Cycle>>
        occupancy_;

    /** Min-heap of pending completions, ordered by done cycle. */
    struct CompletionLater
    {
        bool
        operator()(const Completion& a, const Completion& b) const
        {
            return a.done > b.done;
        }
    };
    std::priority_queue<Completion, std::vector<Completion>,
                        CompletionLater>
        completions_;
};

} // namespace wg

