#include "program.hh"

namespace wg {

Program::Program(std::vector<Instruction> instrs)
    : instrs_(std::move(instrs))
{
    for (const auto& i : instrs_)
        ++class_counts_[static_cast<std::size_t>(i.unit)];
}

std::size_t
Program::countOf(UnitClass uc) const
{
    return class_counts_[static_cast<std::size_t>(uc)];
}

} // namespace wg
