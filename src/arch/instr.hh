/**
 * @file
 * Warp-level instruction representation.
 *
 * The simulator executes warp instructions (one instruction across 32
 * threads, SIMT). We only model what the scheduling and power-gating
 * studies need: the execution-unit class, register dependences, and a
 * memory-latency class for loads.
 */

#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/types.hh"

namespace wg {

/**
 * Execution-unit class an instruction requires. This is the 2-bit
 * "instruction type" field GATES adds to every active-warp entry
 * (LD and ST both map to the LDST pipeline).
 */
enum class UnitClass : std::uint8_t { Int = 0, Fp = 1, Sfu = 2, Ldst = 3 };

/** Number of distinct UnitClass values. */
inline constexpr std::size_t kNumUnitClasses = 4;

/** Printable name of a unit class. */
const char* unitClassName(UnitClass uc);

/**
 * Memory-latency class for LDST instructions. Scored by the memory
 * system into an actual latency (shared/L1 hit vs. DRAM miss).
 */
enum class MemClass : std::uint8_t {
    None = 0,   ///< not a memory instruction
    Hit,        ///< shared memory or L1 hit
    Miss,       ///< L2/DRAM access (long latency)
};

/**
 * A decoded warp instruction. Plain value type; programs are vectors of
 * these. Source operands reference architectural registers written by
 * earlier instructions of the same warp (kNoReg = unused slot).
 */
struct Instruction
{
    UnitClass unit = UnitClass::Int;   ///< execution resource required
    MemClass mem = MemClass::None;     ///< latency class when unit==Ldst
    RegId dest = kNoReg;               ///< destination register
    std::array<RegId, 2> srcs = {kNoReg, kNoReg}; ///< source registers
    bool isStore = false;              ///< store: no dest, still uses LDST

    /** @return true when this instruction writes a register. */
    bool writesReg() const { return dest != kNoReg; }

    /**
     * True for ops that send the issuing warp to the two-level pending
     * set (long-latency events: global loads that miss).
     */
    bool
    isLongLatency() const
    {
        return unit == UnitClass::Ldst && mem == MemClass::Miss &&
               !isStore;
    }

    /**
     * Scoreboard dependence mask over the 16-register window: one bit
     * per live source register plus the destination (WAW: an issue must
     * not overtake the in-flight producer of its own destination).
     */
    std::uint32_t
    regMask() const
    {
        std::uint32_t mask = 0;
        for (RegId src : srcs)
            if (src != kNoReg)
                mask |= 1u << (src & 15u);
        if (dest != kNoReg)
            mask |= 1u << (dest & 15u);
        return mask;
    }

    /** Compact mnemonic, e.g. "FP r3 <- r1,r2" (for traces/tests). */
    std::string toString() const;
};

/** Factory helpers used heavily by tests and hand-built examples. */
Instruction makeInt(RegId dest, RegId src0 = kNoReg, RegId src1 = kNoReg);
Instruction makeFp(RegId dest, RegId src0 = kNoReg, RegId src1 = kNoReg);
Instruction makeSfu(RegId dest, RegId src0 = kNoReg);
Instruction makeLoad(RegId dest, MemClass mem, RegId addr_src = kNoReg);
Instruction makeStore(MemClass mem, RegId data_src, RegId addr_src = kNoReg);

} // namespace wg

