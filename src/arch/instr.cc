#include "instr.hh"

#include <sstream>

namespace wg {

const char*
unitClassName(UnitClass uc)
{
    switch (uc) {
      case UnitClass::Int: return "INT";
      case UnitClass::Fp: return "FP";
      case UnitClass::Sfu: return "SFU";
      case UnitClass::Ldst: return "LDST";
    }
    return "?";
}

std::string
Instruction::toString() const
{
    std::ostringstream os;
    os << unitClassName(unit);
    if (unit == UnitClass::Ldst)
        os << (isStore ? ".st" : ".ld")
           << (mem == MemClass::Miss ? ".miss" : ".hit");
    if (dest != kNoReg)
        os << " r" << dest << " <-";
    bool first = true;
    for (RegId s : srcs) {
        if (s == kNoReg)
            continue;
        os << (first ? " r" : ",r") << s;
        first = false;
    }
    return os.str();
}

Instruction
makeInt(RegId dest, RegId src0, RegId src1)
{
    Instruction i;
    i.unit = UnitClass::Int;
    i.dest = dest;
    i.srcs = {src0, src1};
    return i;
}

Instruction
makeFp(RegId dest, RegId src0, RegId src1)
{
    Instruction i;
    i.unit = UnitClass::Fp;
    i.dest = dest;
    i.srcs = {src0, src1};
    return i;
}

Instruction
makeSfu(RegId dest, RegId src0)
{
    Instruction i;
    i.unit = UnitClass::Sfu;
    i.dest = dest;
    i.srcs = {src0, kNoReg};
    return i;
}

Instruction
makeLoad(RegId dest, MemClass mem, RegId addr_src)
{
    Instruction i;
    i.unit = UnitClass::Ldst;
    i.mem = mem;
    i.dest = dest;
    i.srcs = {addr_src, kNoReg};
    return i;
}

Instruction
makeStore(MemClass mem, RegId data_src, RegId addr_src)
{
    Instruction i;
    i.unit = UnitClass::Ldst;
    i.mem = mem;
    i.isStore = true;
    i.srcs = {data_src, addr_src};
    return i;
}

} // namespace wg
