/**
 * @file
 * A per-warp program: the straight-line instruction sequence a warp
 * executes. Control flow is pre-resolved (trace-style), matching how the
 * power-gating study treats the instruction stream.
 */

#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "arch/instr.hh"

namespace wg {

/**
 * Immutable instruction sequence executed by one warp. Also caches the
 * per-class instruction counts for workload-characterisation reports
 * (Fig. 5a).
 */
class Program
{
  public:
    Program() = default;

    /** Build from an instruction vector. */
    explicit Program(std::vector<Instruction> instrs);

    /** @return instruction at @p pc (pc < size()). */
    const Instruction& at(std::size_t pc) const { return instrs_[pc]; }

    /** @return number of instructions. */
    std::size_t size() const { return instrs_.size(); }

    /** @return true when the program has no instructions. */
    bool empty() const { return instrs_.empty(); }

    /** @return count of instructions of unit class @p uc. */
    std::size_t countOf(UnitClass uc) const;

    /** @return the raw instruction vector. */
    const std::vector<Instruction>& instructions() const { return instrs_; }

  private:
    std::vector<Instruction> instrs_;
    std::array<std::size_t, kNumUnitClasses> class_counts_ = {};
};

} // namespace wg

