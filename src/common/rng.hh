/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The simulator must be bit-reproducible across runs and platforms, so we
 * carry our own PCG32 implementation instead of relying on libstdc++
 * distribution internals.
 */

#pragma once

#include <cstdint>

namespace wg {

/**
 * SplitMix64 step: advance @p x by the golden-ratio increment and run
 * the finalizer. Nearby inputs produce statistically unrelated outputs
 * (full avalanche), which is what makes it safe for deriving seed
 * streams from small consecutive indices.
 */
std::uint64_t splitmix64(std::uint64_t x);

/**
 * Derive the seed for sub-stream @p stream of experiment seed @p seed
 * (e.g. the per-SM RNG streams of one GPU run). Both arguments go
 * through SplitMix64 mixing, so distinct (seed, stream) pairs give
 * decorrelated streams even when seeds or stream indices are adjacent
 * small integers — unlike a linear a*seed + b*stream mix, where nearby
 * pairs yield seeds at a constant offset and thus correlated PCG
 * sequences.
 */
std::uint64_t streamSeed(std::uint64_t seed, std::uint64_t stream);

/**
 * Raw PCG32 generator state, exposed for checkpoint/resume. The pair
 * fully determines the future output sequence; restoring it with
 * Rng::fromState() continues the stream bit-identically.
 */
struct RngState {
    std::uint64_t state = 0; ///< PCG LCG accumulator
    std::uint64_t inc = 1;   ///< stream increment (always odd)
};

/**
 * PCG32 (pcg_xsh_rr_64_32) generator. Small state, excellent statistical
 * quality, and fully deterministic given (seed, stream).
 */
class Rng
{
  public:
    /** Construct from a seed and an optional stream selector. */
    explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL);

    /** @return the next raw 32-bit value. */
    std::uint32_t nextU32();

    /** @return a uniform value in [0, bound). bound must be non-zero. */
    std::uint32_t nextRange(std::uint32_t bound);

    /** @return a uniform double in [0, 1). */
    double nextDouble();

    /** @return true with probability p (clamped to [0,1]). */
    bool nextBool(double p);

    /**
     * Sample a geometric distribution: number of failures before the
     * first success with success probability p in (0, 1].
     */
    std::uint32_t nextGeometric(double p);

    /** Derive an independent child generator (for per-warp streams). */
    Rng fork(std::uint64_t salt);

    /** Capture the raw generator state for a checkpoint. */
    RngState
    saveState() const
    {
        return RngState{state_, inc_};
    }

    /** Rebuild a generator mid-stream from a captured RngState. */
    static Rng
    fromState(const RngState& s)
    {
        Rng r;
        r.state_ = s.state;
        r.inc_ = s.inc;
        return r;
    }

    /** Overwrite this generator's stream position from a checkpoint. */
    void
    restoreState(const RngState& s)
    {
        state_ = s.state;
        inc_ = s.inc;
    }

  private:
    std::uint64_t state_;
    std::uint64_t inc_;
};

} // namespace wg

