#include "args.hh"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "logging.hh"

namespace wg {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description))
{
}

ArgParser::ArgParser(std::string program, std::string description,
                     std::span<const FlagSpec> flags)
    : ArgParser(std::move(program), std::move(description))
{
    for (const FlagSpec& spec : flags) {
        // Keep the default text exactly as written in the table (the
        // typed accessors parse it on demand), so --help shows what
        // the author wrote.
        const std::string def =
            spec.kind == FlagKind::Bool ? "false" : spec.def;
        flags_[spec.name] = Flag{spec.kind, def, spec.help, def, false};
        order_.push_back(spec.name);
    }
}

void
ArgParser::addString(const std::string& name, const std::string& def,
                     const std::string& help)
{
    flags_[name] = Flag{Kind::String, def, help, def, false};
    order_.push_back(name);
}

void
ArgParser::addInt(const std::string& name, std::int64_t def,
                  const std::string& help)
{
    flags_[name] =
        Flag{Kind::Int, std::to_string(def), help, std::to_string(def),
             false};
    order_.push_back(name);
}

void
ArgParser::addDouble(const std::string& name, double def,
                     const std::string& help)
{
    std::ostringstream os;
    os << def;
    flags_[name] = Flag{Kind::Double, os.str(), help, os.str(), false};
    order_.push_back(name);
}

void
ArgParser::addBool(const std::string& name, const std::string& help)
{
    flags_[name] = Flag{Kind::Bool, "false", help, "false", false};
    order_.push_back(name);
}

bool
ArgParser::parse(int argc, const char* const* argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            help_requested_ = true;
            std::fprintf(stdout, "%s", usage().c_str());
            return false;
        }
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }

        std::string name = arg.substr(2);
        std::string value;
        bool has_value = false;
        auto eq = name.find('=');
        if (eq != std::string::npos) {
            value = name.substr(eq + 1);
            name = name.substr(0, eq);
            has_value = true;
        }

        auto it = flags_.find(name);
        if (it == flags_.end()) {
            std::fprintf(stderr, "unknown flag --%s\n%s", name.c_str(),
                         usage().c_str());
            return false;
        }
        Flag& flag = it->second;

        if (flag.kind == Kind::Bool) {
            flag.value = has_value ? value : "true";
        } else {
            if (!has_value) {
                if (i + 1 >= argc) {
                    std::fprintf(stderr, "flag --%s needs a value\n",
                                 name.c_str());
                    return false;
                }
                value = argv[++i];
            }
            if (flag.kind != Kind::String) {
                // Validate numeric values eagerly.
                char* end = nullptr;
                if (flag.kind == Kind::Int)
                    std::strtoll(value.c_str(), &end, 10);
                else
                    std::strtod(value.c_str(), &end);
                if (end == value.c_str() || *end != '\0') {
                    std::fprintf(stderr,
                                 "flag --%s: bad numeric value '%s'\n",
                                 name.c_str(), value.c_str());
                    return false;
                }
            }
            flag.value = value;
        }
        flag.given = true;
    }
    return true;
}

const ArgParser::Flag&
ArgParser::find(const std::string& name, Kind kind) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        panic("ArgParser: flag --", name, " was never declared");
    if (it->second.kind != kind)
        panic("ArgParser: flag --", name, " accessed with wrong type");
    return it->second;
}

std::string
ArgParser::getString(const std::string& name) const
{
    return find(name, Kind::String).value;
}

std::int64_t
ArgParser::getInt(const std::string& name) const
{
    return std::strtoll(find(name, Kind::Int).value.c_str(), nullptr, 10);
}

double
ArgParser::getDouble(const std::string& name) const
{
    return std::strtod(find(name, Kind::Double).value.c_str(), nullptr);
}

bool
ArgParser::getBool(const std::string& name) const
{
    return find(name, Kind::Bool).value == "true";
}

bool
ArgParser::given(const std::string& name) const
{
    auto it = flags_.find(name);
    return it != flags_.end() && it->second.given;
}

std::string
ArgParser::usage() const
{
    std::ostringstream os;
    os << "usage: " << program_ << " [flags]\n";
    if (!description_.empty())
        os << description_ << "\n";
    os << "flags:\n";
    for (const std::string& name : order_) {
        const Flag& flag = flags_.at(name);
        os << "  --" << name;
        if (flag.kind != Kind::Bool)
            os << " <" << flag.def << ">";
        os << "\n      " << flag.help << "\n";
    }
    return os.str();
}

} // namespace wg
