/**
 * @file
 * Fixed-bin histogram used for idle-period-length distributions.
 */

#pragma once

#include <cstdint>
#include <vector>

namespace wg {

/**
 * Histogram over non-negative integer samples with unit-width bins
 * [0, maxBin]; samples above maxBin land in the overflow bin.
 *
 * Used primarily for idle-period lengths (Fig. 3 of the paper), where the
 * interesting range is 0..~25 cycles and everything longer is "long".
 */
class Histogram
{
  public:
    /** @param max_bin largest sample with its own bin. */
    explicit Histogram(std::uint64_t max_bin = 64);

    /**
     * Rebuild a histogram from serialized internals (the wire format's
     * deserialization path). @p sum must be carried explicitly because
     * overflow samples pool with their individual values erased — it is
     * not recoverable from the bins. The caller validates
     * total == sum(bins) + overflow before calling.
     */
    static Histogram fromRaw(std::uint64_t max_bin,
                             std::vector<std::uint64_t> bins,
                             std::uint64_t overflow, std::uint64_t total,
                             std::uint64_t sum);

    /** Record one sample. */
    void add(std::uint64_t sample, std::uint64_t count = 1);

    /** Merge another histogram (same max_bin required). */
    void merge(const Histogram& other);

    /** Discard all samples. */
    void reset();

    /** @return count in bin @p b (b <= maxBin). */
    std::uint64_t bin(std::uint64_t b) const;

    /** @return count of samples strictly greater than maxBin. */
    std::uint64_t overflow() const { return overflow_; }

    /** @return total samples recorded. */
    std::uint64_t total() const { return total_; }

    /** @return largest per-bin sample value. */
    std::uint64_t maxBin() const { return max_bin_; }

    /** @return sum of all recorded sample values. */
    std::uint64_t sum() const { return sum_; }

    /** @return arithmetic mean of samples (0 when empty). */
    double mean() const;

    /**
     * Fraction of samples with value in [lo, hi] (inclusive). hi beyond
     * maxBin includes the overflow bin. Returns 0 when empty.
     */
    double fractionBetween(std::uint64_t lo, std::uint64_t hi) const;

    /**
     * Fraction of samples with value strictly greater than @p bound.
     *
     * Contract: @p bound saturates at maxBin(). Samples above maxBin()
     * are pooled in the overflow bin with their individual values
     * erased, so for bound > maxBin() the true fraction is
     * unknowable; the clamp makes fractionAbove(bound) ==
     * fractionAbove(maxBin()) (the whole overflow mass, an upper
     * bound on the truth) instead of silently pretending bin-level
     * resolution exists up there.
     */
    double fractionAbove(std::uint64_t bound) const;

  private:
    std::uint64_t max_bin_;
    std::vector<std::uint64_t> bins_;
    std::uint64_t overflow_;
    std::uint64_t total_;
    std::uint64_t sum_;
};

/**
 * Fixed-boundary latency histogram in the OpenMetrics shape: a sample
 * lands in the first bucket whose upper bound (inclusive, "le") is >=
 * the sample; everything above the last bound lands in the implicit
 * +Inf bucket. Sum and count are carried so `_sum`/`_count` series can
 * be exported alongside the cumulative `_bucket{le=...}` series.
 *
 * The class is clock-free and not thread-safe; callers record under
 * their own lock and export from a copied snapshot.
 */
class LatencyHistogram
{
  public:
    /** Default bounds: 1ms..300s, roughly log-spaced (seconds). */
    LatencyHistogram();

    /** @param bounds ascending upper bounds in seconds, +Inf excluded. */
    explicit LatencyHistogram(std::vector<double> bounds);

    /** Record one latency sample (seconds; negative clamps to 0). */
    void record(double seconds);

    /** Ascending finite bucket bounds (seconds). */
    const std::vector<double>& bounds() const { return bounds_; }

    /** Non-cumulative count of bucket @p i; i == bounds().size() is +Inf. */
    std::uint64_t bucket(std::size_t i) const;

    /** Cumulative count of samples <= bounds()[i] (OpenMetrics `le`). */
    std::uint64_t cumulative(std::size_t i) const;

    /** Total samples recorded (the +Inf cumulative count). */
    std::uint64_t total() const { return total_; }

    /** Sum of all recorded sample values (seconds). */
    double sum() const { return sum_; }

  private:
    std::vector<double> bounds_;
    std::vector<std::uint64_t> counts_; ///< bounds_.size() + 1 (+Inf last)
    std::uint64_t total_;
    double sum_;
};

} // namespace wg

