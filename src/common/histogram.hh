/**
 * @file
 * Fixed-bin histogram used for idle-period-length distributions.
 */

#pragma once

#include <cstdint>
#include <vector>

namespace wg {

/**
 * Histogram over non-negative integer samples with unit-width bins
 * [0, maxBin]; samples above maxBin land in the overflow bin.
 *
 * Used primarily for idle-period lengths (Fig. 3 of the paper), where the
 * interesting range is 0..~25 cycles and everything longer is "long".
 */
class Histogram
{
  public:
    /** @param max_bin largest sample with its own bin. */
    explicit Histogram(std::uint64_t max_bin = 64);

    /**
     * Rebuild a histogram from serialized internals (the wire format's
     * deserialization path). @p sum must be carried explicitly because
     * overflow samples pool with their individual values erased — it is
     * not recoverable from the bins. The caller validates
     * total == sum(bins) + overflow before calling.
     */
    static Histogram fromRaw(std::uint64_t max_bin,
                             std::vector<std::uint64_t> bins,
                             std::uint64_t overflow, std::uint64_t total,
                             std::uint64_t sum);

    /** Record one sample. */
    void add(std::uint64_t sample, std::uint64_t count = 1);

    /** Merge another histogram (same max_bin required). */
    void merge(const Histogram& other);

    /** Discard all samples. */
    void reset();

    /** @return count in bin @p b (b <= maxBin). */
    std::uint64_t bin(std::uint64_t b) const;

    /** @return count of samples strictly greater than maxBin. */
    std::uint64_t overflow() const { return overflow_; }

    /** @return total samples recorded. */
    std::uint64_t total() const { return total_; }

    /** @return largest per-bin sample value. */
    std::uint64_t maxBin() const { return max_bin_; }

    /** @return sum of all recorded sample values. */
    std::uint64_t sum() const { return sum_; }

    /** @return arithmetic mean of samples (0 when empty). */
    double mean() const;

    /**
     * Fraction of samples with value in [lo, hi] (inclusive). hi beyond
     * maxBin includes the overflow bin. Returns 0 when empty.
     */
    double fractionBetween(std::uint64_t lo, std::uint64_t hi) const;

    /**
     * Fraction of samples with value strictly greater than @p bound.
     *
     * Contract: @p bound saturates at maxBin(). Samples above maxBin()
     * are pooled in the overflow bin with their individual values
     * erased, so for bound > maxBin() the true fraction is
     * unknowable; the clamp makes fractionAbove(bound) ==
     * fractionAbove(maxBin()) (the whole overflow mass, an upper
     * bound on the truth) instead of silently pretending bin-level
     * resolution exists up there.
     */
    double fractionAbove(std::uint64_t bound) const;

  private:
    std::uint64_t max_bin_;
    std::vector<std::uint64_t> bins_;
    std::uint64_t overflow_;
    std::uint64_t total_;
    std::uint64_t sum_;
};

} // namespace wg

