/**
 * @file
 * ASCII table formatter used by the benchmark harnesses to print
 * paper-style rows (one row per benchmark, one column per technique).
 */

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace wg {

/**
 * Column-aligned text table. Cells are strings; numeric helpers format
 * with fixed precision. The first added row is treated as the header.
 */
class Table
{
  public:
    /** @param title printed above the table. */
    explicit Table(std::string title);

    /** Set the header row. */
    void header(const std::vector<std::string>& cells);

    /** Append a body row. Rows may be ragged; missing cells are blank. */
    void row(const std::vector<std::string>& cells);

    /** Format a double with @p digits decimals. */
    static std::string num(double value, int digits = 3);

    /** Format a ratio as a percentage string, e.g. "31.6%". */
    static std::string pct(double ratio, int digits = 1);

    /** Render to a stream. */
    void print(std::ostream& os) const;

    /** Render to stdout. */
    void print() const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace wg

