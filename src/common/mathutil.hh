/**
 * @file
 * Small statistical helpers: Pearson correlation, geometric mean, etc.
 */

#pragma once

#include <vector>

namespace wg {

/**
 * Pearson correlation coefficient between two equally sized samples.
 * Returns 0 when either sample has zero variance or fewer than two points.
 */
double pearson(const std::vector<double>& xs, const std::vector<double>& ys);

/**
 * Geometric mean of strictly positive values. Non-positive entries are
 * clamped to a tiny epsilon so a single zero does not wipe the result;
 * returns 0 for an empty input.
 */
double geomean(const std::vector<double>& xs);

/** Arithmetic mean; 0 for an empty input. */
double mean(const std::vector<double>& xs);

/** Clamp helper. */
double clamp(double v, double lo, double hi);

} // namespace wg

