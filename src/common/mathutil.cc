#include "mathutil.hh"

#include <cmath>

#include "logging.hh"

namespace wg {

double
pearson(const std::vector<double>& xs, const std::vector<double>& ys)
{
    if (xs.size() != ys.size())
        panic("pearson: size mismatch (", xs.size(), " vs ", ys.size(), ")");
    const std::size_t n = xs.size();
    if (n < 2)
        return 0.0;

    double mx = mean(xs);
    double my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        double dx = xs[i] - mx;
        double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx <= 0.0 || syy <= 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

double
geomean(const std::vector<double>& xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs) {
        double v = x > 1e-12 ? x : 1e-12;
        acc += std::log(v);
    }
    return std::exp(acc / static_cast<double>(xs.size()));
}

double
mean(const std::vector<double>& xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs)
        acc += x;
    return acc / static_cast<double>(xs.size());
}

double
clamp(double v, double lo, double hi)
{
    if (v < lo)
        return lo;
    if (v > hi)
        return hi;
    return v;
}

} // namespace wg
