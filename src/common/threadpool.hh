/**
 * @file
 * Shared fixed-size work-stealing thread pool.
 *
 * All simulator parallelism funnels through one pool sized to the
 * hardware (ThreadPool::global()): Gpu::runPrograms submits per-SM
 * jobs, ExperimentRunner::runAll submits whole simulations, and wgsim
 * submits per-benchmark sweeps. A single pool keeps the host fully
 * busy without oversubscribing it the way one-OS-thread-per-SM
 * std::async did.
 *
 * Nested submission is deadlock-free by construction: each worker owns
 * a deque and steals from its siblings when drained, and a thread that
 * must block on a future calls wait(), which *helps* — it executes
 * queued tasks instead of sleeping. A pool of size 1 (or a pool task
 * that fans out sub-tasks) therefore still makes progress: the waiter
 * runs the work itself.
 */

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/thread_annotations.hh"

namespace wg {

/** Lifetime execution counters of a pool (self-profiling). */
struct PoolStats
{
    std::uint64_t tasksExecuted = 0; ///< tasks run to completion
    double busySeconds = 0.0;        ///< summed task execution time
    std::uint64_t steals = 0;        ///< tasks taken from a sibling deque
    std::uint64_t queueDepth = 0;    ///< tasks queued, not yet started
    std::uint64_t active = 0;        ///< tasks currently executing
    unsigned threads = 0;            ///< worker-thread count
    bool draining = false;           ///< drain() has begun
};

class ThreadPool
{
  public:
    /**
     * @param threads worker count; 0 means
     *        std::thread::hardware_concurrency() (at least 1).
     */
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /**
     * The process-wide pool, created on first use and sized to the
     * hardware. Every subsystem shares it so concurrent sweeps cannot
     * oversubscribe the host.
     */
    static ThreadPool& global();

    /** Worker-thread count. */
    unsigned size() const { return static_cast<unsigned>(workers_.size()); }

    /** Submit a nullary callable; its result arrives via the future. */
    template <typename F>
    auto submit(F&& fn) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> fut = task->get_future();
        enqueue([task]() { (*task)(); });
        return fut;
    }

    /**
     * Block until @p fut is ready, executing queued pool tasks while
     * waiting. Safe to call from inside a pool task (this is what makes
     * nested fan-out deadlock-free).
     */
    template <typename T>
    T wait(std::future<T>& fut)
    {
        helpWhile([&fut] {
            return fut.wait_for(std::chrono::seconds(0)) !=
                   std::future_status::ready;
        });
        return fut.get();
    }

    /** wait() over a whole batch, in order. */
    template <typename T>
    std::vector<T> waitAll(std::vector<std::future<T>>& futs)
    {
        std::vector<T> out;
        out.reserve(futs.size());
        for (auto& f : futs)
            out.push_back(wait(f));
        return out;
    }

    /**
     * Pop-and-run one pending task (own deque first, then steal).
     * @return false if every deque was empty.
     */
    bool tryRunOne();

    /**
     * Graceful shutdown: reject new external submissions and block
     * until every queued and running task has finished.
     *
     * Semantics chosen for a draining daemon:
     *   - External submit() calls made after drain() begins throw
     *     std::runtime_error — callers must stop feeding the pool.
     *   - Submissions from *inside* a pool task (nested fan-out, e.g. a
     *     running simulation spawning its per-SM jobs) are still
     *     accepted; rejecting them would strand in-flight work and
     *     deadlock the drain.
     *   - Safe on the leaked global() pool of a dying process: drain
     *     only waits for quiescence, it never joins worker threads, so
     *     it cannot deadlock against the intentionally-skipped
     *     destructor (the OS reclaims the workers at exit).
     *
     * Draining is terminal for the pool (there is no resume); create a
     * fresh pool for new work. Calling drain() again returns once the
     * pool is quiescent. Calling it from inside a pool task is a
     * logic error and panics (the caller's own task could never
     * finish, so quiescence would be unreachable).
     */
    void drain();

    /** True once drain() has begun. */
    bool draining() const;

    /**
     * Tasks executed and summed busy time since construction. The
     * counters are sampled independently (not a consistent snapshot);
     * utilization derived from them is a profiling estimate. Summed
     * busy time can exceed wall-clock time on a multi-worker pool —
     * utilization = busySeconds / (elapsed * size()). queueDepth,
     * active, steals, and draining are a point-in-time view taken
     * under the pool lock.
     */
    PoolStats stats() const;

  private:
    void enqueue(std::function<void()> fn);
    void runTask(std::function<void()>& task);
    void finishTask();
    void workerLoop(unsigned index);
    bool popTask(unsigned preferred, std::function<void()>& out)
        WG_REQUIRES(mu_);
    bool pendingLocked() const WG_REQUIRES(mu_);
    void helpWhile(const std::function<bool()>& busy);

    // One deque per worker. A coarse lock keeps the stealing protocol
    // simple (contention is negligible next to a simulation task);
    // the per-worker split still gives submit/steal locality.
    mutable Mutex mu_;
    CondVar cv_;
    std::vector<std::deque<std::function<void()>>> deques_ WG_GUARDED_BY(mu_);
    std::vector<std::thread> workers_;
    std::size_t next_ WG_GUARDED_BY(mu_) =
        0; ///< round-robin target for external submits
    bool stop_ WG_GUARDED_BY(mu_) = false;
    bool draining_ WG_GUARDED_BY(mu_) =
        false; ///< drain() begun; external submits throw
    std::size_t active_ WG_GUARDED_BY(mu_) = 0; ///< tasks currently executing
    std::uint64_t steals_ WG_GUARDED_BY(mu_) = 0; ///< cross-deque pops
    CondVar drain_cv_; ///< signalled as tasks finish

    // Self-profiling counters; relaxed atomics, the two are not a
    // consistent pair (see stats()).
    std::atomic<std::uint64_t> tasks_executed_{0};
    std::atomic<std::uint64_t> busy_ns_{0};
};

} // namespace wg

