/**
 * @file
 * Fundamental scalar types shared across the simulator.
 */

#pragma once

#include <cstdint>

namespace wg {

/** Simulation time, measured in core-clock cycles. */
using Cycle = std::uint64_t;

/** Energy in joules. All accounting is double-precision joules. */
using Joule = double;

/** Power in watts. */
using Watt = double;

/** Identifier of a warp within an SM (0 .. residentWarps-1). */
using WarpId = std::uint32_t;

/** Identifier of an SM within the GPU. */
using SmId = std::uint32_t;

/** Architectural register index within a warp's register window. */
using RegId = std::uint16_t;

/** Sentinel register id meaning "no register". */
inline constexpr RegId kNoReg = 0xffff;

/** Sentinel cycle meaning "never". */
inline constexpr Cycle kNeverCycle = ~Cycle(0);

} // namespace wg

