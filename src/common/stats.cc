#include "stats.hh"

namespace wg {

void
StatSet::incr(const std::string& name, double delta)
{
    stats_[name] += delta;
}

void
StatSet::set(const std::string& name, double value)
{
    stats_[name] = value;
}

double
StatSet::get(const std::string& name) const
{
    auto it = stats_.find(name);
    return it == stats_.end() ? 0.0 : it->second;
}

bool
StatSet::has(const std::string& name) const
{
    return stats_.find(name) != stats_.end();
}

double
StatSet::sumPrefix(const std::string& prefix) const
{
    double acc = 0.0;
    for (auto it = stats_.lower_bound(prefix); it != stats_.end(); ++it) {
        if (it->first.compare(0, prefix.size(), prefix) != 0)
            break;
        acc += it->second;
    }
    return acc;
}

void
StatSet::merge(const StatSet& other)
{
    for (const auto& [name, value] : other.stats_)
        stats_[name] += value;
}

void
StatSet::mergePrefixed(const std::string& prefix, const StatSet& other)
{
    for (const auto& [name, value] : other.stats_)
        stats_[prefix + "." + name] += value;
}

} // namespace wg
