/**
 * @file
 * Lightweight named-statistics registry.
 *
 * Components register scalar counters under hierarchical dotted names
 * ("sm0.pg.int0.wakeups"). The registry supports merging (across SMs),
 * lookup by exact name, and prefix aggregation, which the experiment
 * runner uses to build per-GPU totals from per-SM stats.
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace wg {

/**
 * A flat map of dotted stat names to double values. Counters are doubles
 * so energies and ratios live in the same table as event counts.
 */
class StatSet
{
  public:
    /** Add @p delta to the named stat, creating it at zero if absent. */
    void incr(const std::string& name, double delta = 1.0);

    /** Set a stat to an absolute value. */
    void set(const std::string& name, double value);

    /** @return the stat's value, or 0 when absent. */
    double get(const std::string& name) const;

    /** @return true when the stat exists. */
    bool has(const std::string& name) const;

    /** Sum of all stats whose name starts with @p prefix. */
    double sumPrefix(const std::string& prefix) const;

    /** Add every entry of @p other into this set (summing duplicates). */
    void merge(const StatSet& other);

    /**
     * Merge @p other with every key prefixed by @p prefix + ".".
     * Used to fold per-SM stats into a GPU-level set.
     */
    void mergePrefixed(const std::string& prefix, const StatSet& other);

    /** All (name, value) pairs in name order. */
    const std::map<std::string, double>& entries() const { return stats_; }

    /** Remove everything. */
    void clear() { stats_.clear(); }

  private:
    std::map<std::string, double> stats_;
};

} // namespace wg

