#include "logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "thread_annotations.hh"

namespace wg {

namespace {

// Serialises whole formatted lines: thread-pool workers log
// concurrently, and interleaved fprintf output is useless. Message
// formatting (detail::concat) happens before the lock is taken.
Mutex log_mutex;

// Atomic, not mutex-guarded: tests and benches flip quiet from the
// main thread while workers are mid-logMessage.
std::atomic<bool> quiet{false};

// Optional tee; guarded by log_mutex like the stderr stream itself.
std::function<void(LogLevel, const std::string&)> log_hook
    WG_GUARDED_BY(log_mutex);

const char*
prefix(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Panic: return "panic";
    }
    return "?";
}

} // namespace

void
setQuiet(bool q)
{
    quiet.store(q, std::memory_order_relaxed);
}

bool
isQuiet()
{
    return quiet.load(std::memory_order_relaxed);
}

void
setLogHook(std::function<void(LogLevel, const std::string&)> hook)
{
    MutexLock lock(log_mutex);
    log_hook = std::move(hook);
}

void
logMessage(LogLevel level, const std::string& msg)
{
    {
        MutexLock lock(log_mutex);
        if (log_hook)
            log_hook(level, msg);
        if (level != LogLevel::Inform || !isQuiet())
            std::fprintf(stderr, "%s: %s\n", prefix(level), msg.c_str());
    }
    if (level == LogLevel::Fatal)
        std::exit(1);
    if (level == LogLevel::Panic)
        std::abort();
}

} // namespace wg
