#include "logging.hh"

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace wg {

namespace {

std::mutex log_mutex;
bool quiet = false;

const char*
prefix(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Panic: return "panic";
    }
    return "?";
}

} // namespace

void
setQuiet(bool q)
{
    quiet = q;
}

bool
isQuiet()
{
    return quiet;
}

void
logMessage(LogLevel level, const std::string& msg)
{
    {
        std::lock_guard<std::mutex> lock(log_mutex);
        if (level != LogLevel::Inform || !quiet)
            std::fprintf(stderr, "%s: %s\n", prefix(level), msg.c_str());
    }
    if (level == LogLevel::Fatal)
        std::exit(1);
    if (level == LogLevel::Panic)
        std::abort();
}

} // namespace wg
