#include "rng.hh"

#include <cmath>

namespace wg {

std::uint64_t
splitmix64(std::uint64_t x)
{
    std::uint64_t z = x + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
streamSeed(std::uint64_t seed, std::uint64_t stream)
{
    // Jump the SplitMix64 sequence seeded at `seed` to position
    // `stream` (its state advances by the golden-ratio constant per
    // draw), then mix once more so seed pairs at exactly that offset
    // cannot alias.
    return splitmix64(
        splitmix64(seed + stream * 0x9e3779b97f4a7c15ULL));
}

Rng::Rng(std::uint64_t seed, std::uint64_t stream)
    : state_(0), inc_((stream << 1u) | 1u)
{
    nextU32();
    state_ += seed;
    nextU32();
}

std::uint32_t
Rng::nextU32()
{
    std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    std::uint32_t xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    std::uint32_t rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
}

std::uint32_t
Rng::nextRange(std::uint32_t bound)
{
    // Lemire-style rejection to avoid modulo bias.
    std::uint32_t threshold = (-bound) % bound;
    for (;;) {
        std::uint32_t r = nextU32();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::nextDouble()
{
    return nextU32() * (1.0 / 4294967296.0);
}

bool
Rng::nextBool(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

std::uint32_t
Rng::nextGeometric(double p)
{
    if (p >= 1.0)
        return 0;
    if (p <= 0.0)
        return 0xffffffffu;
    // Inverse-CDF sampling; u in (0,1).
    double u = nextDouble();
    if (u <= 0.0)
        u = 1e-12;
    double k = std::floor(std::log(u) / std::log1p(-p));
    if (k < 0.0)
        k = 0.0;
    if (k > 4294967294.0)
        k = 4294967294.0;
    return static_cast<std::uint32_t>(k);
}

Rng
Rng::fork(std::uint64_t salt)
{
    // Mix the salt through SplitMix64 so nearby salts give unrelated
    // streams.
    std::uint64_t z = splitmix64(salt);
    std::uint64_t seed = state_ ^ z;
    std::uint64_t stream = inc_ ^ (z * 0xda942042e4dd58b5ULL);
    return Rng(seed, stream);
}

} // namespace wg
