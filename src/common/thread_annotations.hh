/**
 * @file
 * Clang Thread Safety Analysis vocabulary + thin annotated mutex
 * wrappers (DESIGN.md §18).
 *
 * The WG_* macros map onto clang's `-Wthread-safety` attributes and
 * expand to nothing on every other compiler, so the annotations are
 * pure compile-time documentation that GCC builds ignore and the
 * clang-tsa preset enforces (`-Werror=thread-safety`; the seeded
 * canary in tests/thread_safety_canary.cc proves the gate can fail).
 *
 * Annotation discipline for new code:
 *   - every field shared between threads carries WG_GUARDED_BY(mu_);
 *   - every helper that assumes the lock is held carries
 *     WG_REQUIRES(mu_) (and, by this tree's convention, a name ending
 *     in "Locked" — wglint rule C2 understands both spellings);
 *   - lock with the RAII MutexLock, never raw .lock()/.unlock()
 *     (wglint rule C1 flags raw calls; this header is the one
 *     sanctioned wrapper and is exempt).
 *
 * The wrappers are deliberately thin: Mutex is a std::mutex that
 * carries the CAPABILITY attribute, MutexLock is a std::unique_lock
 * that carries SCOPED_CAPABILITY (with annotated mid-scope
 * unlock()/relock(), which runInternal-style single-flight code
 * needs), and CondVar adapts std::condition_variable to MutexLock.
 * None of them add state or change locking behaviour, so swapping
 * them in is bit-identical to the raw std:: types they wrap.
 */

#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define WG_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define WG_THREAD_ANNOTATION(x) // no-op outside clang
#endif

/** Marks a class as a lockable capability (mutex-like). */
#define WG_CAPABILITY(x) WG_THREAD_ANNOTATION(capability(x))

/** Marks an RAII class whose lifetime equals a critical section. */
#define WG_SCOPED_CAPABILITY WG_THREAD_ANNOTATION(scoped_lockable)

/** Field may only be accessed while holding the given capability. */
#define WG_GUARDED_BY(x) WG_THREAD_ANNOTATION(guarded_by(x))

/** Pointee may only be accessed while holding the given capability. */
#define WG_PT_GUARDED_BY(x) WG_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function may only be called while holding the capabilities. */
#define WG_REQUIRES(...) \
    WG_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function acquires the capabilities and does not release them. */
#define WG_ACQUIRE(...) \
    WG_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function releases the capabilities. */
#define WG_RELEASE(...) \
    WG_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function acquires the capability when returning the given value. */
#define WG_TRY_ACQUIRE(...) \
    WG_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Function must NOT be called while holding the capabilities. */
#define WG_EXCLUDES(...) WG_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Function returns a reference to the given capability. */
#define WG_RETURN_CAPABILITY(x) WG_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch: disable the analysis for one function. */
#define WG_NO_THREAD_SAFETY_ANALYSIS \
    WG_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace wg {

/**
 * std::mutex carrying the CAPABILITY attribute so WG_GUARDED_BY /
 * WG_REQUIRES annotations can name it. native() exists only for the
 * CondVar / MutexLock plumbing below — call sites lock through
 * MutexLock, never through the raw handle.
 */
class WG_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() WG_ACQUIRE() { mu_.lock(); }
    void unlock() WG_RELEASE() { mu_.unlock(); }
    bool tryLock() WG_TRY_ACQUIRE(true) { return mu_.try_lock(); }

    /** Underlying handle for MutexLock/CondVar; not for call sites. */
    std::mutex& native() { return mu_; }

  private:
    std::mutex mu_;
};

/**
 * RAII critical section over a Mutex (the annotated twin of
 * std::unique_lock, which it wraps). Mid-scope unlock()/relock() are
 * annotated so single-flight code that drops the lock around a long
 * compute stays analyzable; the destructor releases only if held.
 */
class WG_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex& mu) WG_ACQUIRE(mu) : lock_(mu.native()) {}
    ~MutexLock() WG_RELEASE() {}

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

    /** Drop the lock mid-scope (e.g. around a long compute). */
    void unlock() WG_RELEASE() { lock_.unlock(); }

    /** Re-take the lock after unlock(). */
    void relock() WG_ACQUIRE() { lock_.lock(); }

    /** Underlying handle for CondVar::wait; not for call sites. */
    std::unique_lock<std::mutex>& native() { return lock_; }

  private:
    std::unique_lock<std::mutex> lock_;
};

/**
 * std::condition_variable adapted to MutexLock. wait() atomically
 * releases and re-acquires the underlying mutex, which the analysis
 * models as the capability being held across the call.
 *
 * Prefer the plain wait() in an explicit `while (!cond) cv.wait(lock)`
 * loop when the condition reads WG_GUARDED_BY fields: clang analyzes a
 * predicate lambda as a separate function that cannot see the held
 * lock, so the inline loop is the form the analysis understands.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar&) = delete;
    CondVar& operator=(const CondVar&) = delete;

    void wait(MutexLock& lock) { cv_.wait(lock.native()); }

    template <typename Rep, typename Period>
    std::cv_status waitFor(MutexLock& lock,
                           const std::chrono::duration<Rep, Period>& dur)
    {
        return cv_.wait_for(lock.native(), dur);
    }

    template <typename Predicate>
    void wait(MutexLock& lock, Predicate pred)
    {
        cv_.wait(lock.native(), pred);
    }

    void notifyOne() { cv_.notify_one(); }
    void notifyAll() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

} // namespace wg
