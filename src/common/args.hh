/**
 * @file
 * Minimal command-line flag parser for the tools.
 *
 * Supports `--name value`, `--name=value` and boolean `--name` flags,
 * with typed accessors, defaults, and an auto-generated usage text.
 */

#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace wg {

/** Value type of one command-line flag. */
enum class FlagKind : std::uint8_t { String, Int, Double, Bool };

/**
 * One row of a declarative flag table. Tools declare their whole
 * command line as a `constexpr FlagSpec[]` and hand it to ArgParser in
 * one go — the table is the single source of truth for parsing and the
 * generated --help text.
 */
struct FlagSpec
{
    const char* name; ///< flag name without the leading "--"
    FlagKind kind;
    const char* def;  ///< default, rendered verbatim (ignored for Bool)
    const char* help; ///< one-line description for --help
};

/** Declarative flag set + parsed values. */
class ArgParser
{
  public:
    /** @param program name shown in usage output. */
    explicit ArgParser(std::string program, std::string description = "");

    /** Declare every flag of @p flags up front (table form). */
    ArgParser(std::string program, std::string description,
              std::span<const FlagSpec> flags);

    /** Declare a string flag. */
    void addString(const std::string& name, const std::string& def,
                   const std::string& help);

    /** Declare an integer flag. */
    void addInt(const std::string& name, std::int64_t def,
                const std::string& help);

    /** Declare a double flag. */
    void addDouble(const std::string& name, double def,
                   const std::string& help);

    /** Declare a boolean flag (presence = true). */
    void addBool(const std::string& name, const std::string& help);

    /**
     * Parse argv. @return false on error or when --help was given (an
     * error/usage message has been printed to stderr).
     */
    bool parse(int argc, const char* const* argv);

    /**
     * True when parse() returned false because --help/-h was given
     * rather than because of a bad command line — tools use this to
     * exit 0 for a help request and 2 for an actual usage error.
     */
    bool helpRequested() const { return help_requested_; }

    std::string getString(const std::string& name) const;
    std::int64_t getInt(const std::string& name) const;
    double getDouble(const std::string& name) const;
    bool getBool(const std::string& name) const;

    /** true when the flag appeared on the command line. */
    bool given(const std::string& name) const;

    /** Positional (non-flag) arguments in order. */
    const std::vector<std::string>& positional() const
    {
        return positional_;
    }

    /** Render the usage text. */
    std::string usage() const;

  private:
    using Kind = FlagKind;

    struct Flag
    {
        Kind kind;
        std::string def;
        std::string help;
        std::string value;
        bool given = false;
    };

    const Flag& find(const std::string& name, Kind kind) const;

    std::string program_;
    std::string description_;
    std::map<std::string, Flag> flags_;
    std::vector<std::string> order_;
    std::vector<std::string> positional_;
    bool help_requested_ = false;
};

} // namespace wg

