/**
 * @file
 * Minimal command-line flag parser for the tools.
 *
 * Supports `--name value`, `--name=value` and boolean `--name` flags,
 * with typed accessors, defaults, and an auto-generated usage text.
 */

#ifndef WG_COMMON_ARGS_HH
#define WG_COMMON_ARGS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace wg {

/** Declarative flag set + parsed values. */
class ArgParser
{
  public:
    /** @param program name shown in usage output. */
    explicit ArgParser(std::string program, std::string description = "");

    /** Declare a string flag. */
    void addString(const std::string& name, const std::string& def,
                   const std::string& help);

    /** Declare an integer flag. */
    void addInt(const std::string& name, std::int64_t def,
                const std::string& help);

    /** Declare a double flag. */
    void addDouble(const std::string& name, double def,
                   const std::string& help);

    /** Declare a boolean flag (presence = true). */
    void addBool(const std::string& name, const std::string& help);

    /**
     * Parse argv. @return false on error or when --help was given (an
     * error/usage message has been printed to stderr).
     */
    bool parse(int argc, const char* const* argv);

    std::string getString(const std::string& name) const;
    std::int64_t getInt(const std::string& name) const;
    double getDouble(const std::string& name) const;
    bool getBool(const std::string& name) const;

    /** true when the flag appeared on the command line. */
    bool given(const std::string& name) const;

    /** Positional (non-flag) arguments in order. */
    const std::vector<std::string>& positional() const
    {
        return positional_;
    }

    /** Render the usage text. */
    std::string usage() const;

  private:
    enum class Kind { String, Int, Double, Bool };

    struct Flag
    {
        Kind kind;
        std::string def;
        std::string help;
        std::string value;
        bool given = false;
    };

    const Flag& find(const std::string& name, Kind kind) const;

    std::string program_;
    std::string description_;
    std::map<std::string, Flag> flags_;
    std::vector<std::string> order_;
    std::vector<std::string> positional_;
};

} // namespace wg

#endif // WG_COMMON_ARGS_HH
