#include "histogram.hh"

#include "logging.hh"

namespace wg {

Histogram::Histogram(std::uint64_t max_bin)
    : max_bin_(max_bin), bins_(max_bin + 1, 0), overflow_(0), total_(0),
      sum_(0)
{
}

Histogram
Histogram::fromRaw(std::uint64_t max_bin,
                   std::vector<std::uint64_t> bins,
                   std::uint64_t overflow, std::uint64_t total,
                   std::uint64_t sum)
{
    if (bins.size() != max_bin + 1)
        panic("Histogram::fromRaw: ", bins.size(), " bins for max_bin ",
              max_bin);
    Histogram h(max_bin);
    h.bins_ = std::move(bins);
    h.overflow_ = overflow;
    h.total_ = total;
    h.sum_ = sum;
    return h;
}

void
Histogram::add(std::uint64_t sample, std::uint64_t count)
{
    if (sample <= max_bin_)
        bins_[sample] += count;
    else
        overflow_ += count;
    total_ += count;
    sum_ += sample * count;
}

void
Histogram::merge(const Histogram& other)
{
    if (other.max_bin_ != max_bin_)
        panic("Histogram::merge: bin count mismatch (", max_bin_, " vs ",
              other.max_bin_, ")");
    for (std::uint64_t b = 0; b <= max_bin_; ++b)
        bins_[b] += other.bins_[b];
    overflow_ += other.overflow_;
    total_ += other.total_;
    sum_ += other.sum_;
}

void
Histogram::reset()
{
    for (auto& b : bins_)
        b = 0;
    overflow_ = 0;
    total_ = 0;
    sum_ = 0;
}

std::uint64_t
Histogram::bin(std::uint64_t b) const
{
    if (b > max_bin_)
        panic("Histogram::bin: index ", b, " out of range");
    return bins_[b];
}

double
Histogram::mean() const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(sum_) / static_cast<double>(total_);
}

double
Histogram::fractionBetween(std::uint64_t lo, std::uint64_t hi) const
{
    if (total_ == 0 || lo > hi)
        return 0.0;
    std::uint64_t count = 0;
    std::uint64_t top = hi < max_bin_ ? hi : max_bin_;
    for (std::uint64_t b = lo; b <= top && b <= max_bin_; ++b)
        count += bins_[b];
    if (hi > max_bin_)
        count += overflow_;
    return static_cast<double>(count) / static_cast<double>(total_);
}

double
Histogram::fractionAbove(std::uint64_t bound) const
{
    if (total_ == 0)
        return 0.0;
    // Saturate at max_bin_: overflow samples carry no per-value
    // information, so any bound beyond the last real bin can only
    // answer "everything in the overflow bin" (see header contract).
    if (bound >= max_bin_) {
        return static_cast<double>(overflow_) /
               static_cast<double>(total_);
    }
    return fractionBetween(bound + 1, max_bin_ + 1);
}

LatencyHistogram::LatencyHistogram()
    : LatencyHistogram(std::vector<double>{
          0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
          2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0})
{
}

LatencyHistogram::LatencyHistogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0),
      total_(0), sum_(0.0)
{
    for (std::size_t i = 1; i < bounds_.size(); ++i)
        if (bounds_[i] <= bounds_[i - 1])
            panic("LatencyHistogram: bounds must be strictly ascending");
}

void
LatencyHistogram::record(double seconds)
{
    if (seconds < 0.0)
        seconds = 0.0;
    std::size_t i = 0;
    while (i < bounds_.size() && seconds > bounds_[i])
        ++i;
    ++counts_[i];
    ++total_;
    sum_ += seconds;
}

std::uint64_t
LatencyHistogram::bucket(std::size_t i) const
{
    if (i >= counts_.size())
        panic("LatencyHistogram::bucket: index ", i, " out of range");
    return counts_[i];
}

std::uint64_t
LatencyHistogram::cumulative(std::size_t i) const
{
    if (i >= counts_.size())
        panic("LatencyHistogram::cumulative: index ", i,
              " out of range");
    std::uint64_t c = 0;
    for (std::size_t b = 0; b <= i; ++b)
        c += counts_[b];
    return c;
}

} // namespace wg
