#include "table.hh"

#include <cstdio>
#include <iostream>
#include <sstream>

namespace wg {

Table::Table(std::string title) : title_(std::move(title))
{
}

void
Table::header(const std::vector<std::string>& cells)
{
    header_ = cells;
}

void
Table::row(const std::vector<std::string>& cells)
{
    rows_.push_back(cells);
}

std::string
Table::num(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
    return buf;
}

std::string
Table::pct(double ratio, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", digits, ratio * 100.0);
    return buf;
}

void
Table::print(std::ostream& os) const
{
    // Compute column widths over header + body.
    std::vector<std::size_t> widths;
    auto grow = [&](const std::vector<std::string>& cells) {
        if (cells.size() > widths.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            if (cells[i].size() > widths[i])
                widths[i] = cells[i].size();
    };
    grow(header_);
    for (const auto& r : rows_)
        grow(r);

    auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            std::string cell = i < cells.size() ? cells[i] : "";
            os << cell;
            if (i + 1 < widths.size())
                os << std::string(widths[i] - cell.size() + 2, ' ');
        }
        os << '\n';
    };

    os << "== " << title_ << " ==\n";
    if (!header_.empty()) {
        emit(header_);
        std::size_t line = 0;
        for (std::size_t i = 0; i < widths.size(); ++i)
            line += widths[i] + (i + 1 < widths.size() ? 2 : 0);
        os << std::string(line, '-') << '\n';
    }
    for (const auto& r : rows_)
        emit(r);
    os << std::endl;
}

void
Table::print() const
{
    print(std::cout);
}

} // namespace wg
