#include "threadpool.hh"

#include <stdexcept>

#include "logging.hh"

namespace wg {

namespace {

/** Identity of the pool worker running on this thread, if any. */
thread_local ThreadPool* tls_pool = nullptr;
thread_local unsigned tls_index = 0;

} // namespace

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    deques_.resize(threads);
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mu_);
        stop_ = true;
    }
    cv_.notifyAll();
    for (std::thread& t : workers_)
        t.join();
}

ThreadPool&
ThreadPool::global()
{
    // Intentionally leaked: the shared pool must outlive every static
    // object that might touch it during teardown, and exit() from a
    // forked child (gtest death tests fork after the workers exist in
    // the parent only) must not try to join threads this process never
    // had. Skipping the destructor sidesteps both; the OS reclaims the
    // workers at process exit.
    static ThreadPool* pool = new ThreadPool();
    return *pool;
}

void
ThreadPool::enqueue(std::function<void()> fn)
{
    {
        MutexLock lock(mu_);
        // Draining rejects *external* work only: a running task's
        // nested fan-out (per-SM jobs of an in-flight simulation) must
        // still land, or the drain could never finish (see drain()).
        if (draining_ && tls_pool != this)
            throw std::runtime_error(
                "ThreadPool: submit on a draining pool");
        // A worker keeps its fan-out local; external submitters spread
        // round-robin so idle workers have something to steal.
        std::size_t target = (tls_pool == this)
                                 ? tls_index
                                 : (next_++ % deques_.size());
        deques_[target].push_back(std::move(fn));
    }
    cv_.notifyOne();
}

bool
ThreadPool::popTask(unsigned preferred, std::function<void()>& out)
{
    // LIFO on the own deque (cache-warm, depth-first fan-out), FIFO
    // steals from siblings (oldest work first).
    if (!deques_[preferred].empty()) {
        out = std::move(deques_[preferred].back());
        deques_[preferred].pop_back();
        return true;
    }
    for (std::size_t i = 1; i < deques_.size(); ++i) {
        std::size_t victim = (preferred + i) % deques_.size();
        if (!deques_[victim].empty()) {
            out = std::move(deques_[victim].front());
            deques_[victim].pop_front();
            ++steals_;
            return true;
        }
    }
    return false;
}

bool
ThreadPool::tryRunOne()
{
    std::function<void()> task;
    {
        MutexLock lock(mu_);
        unsigned preferred = (tls_pool == this) ? tls_index : 0;
        if (!popTask(preferred, task))
            return false;
        ++active_;
    }
    runTask(task);
    finishTask();
    return true;
}

void
ThreadPool::runTask(std::function<void()>& task)
{
    // Pool self-profiling only (PoolStats.busySeconds); never feeds
    // simulation results. wglint:allow(D1)
    auto t0 = std::chrono::steady_clock::now();
    task();
    auto t1 = std::chrono::steady_clock::now(); // wglint:allow(D1)
    auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count();
    busy_ns_.fetch_add(static_cast<std::uint64_t>(ns),
                       std::memory_order_relaxed);
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
}

void
ThreadPool::finishTask()
{
    bool quiescent = false;
    {
        MutexLock lock(mu_);
        --active_;
        quiescent = draining_ && active_ == 0 && !pendingLocked();
    }
    // Only a drain waiter sleeps on drain_cv_, and only the last task
    // out can satisfy it; skipping the notify otherwise keeps the
    // per-task overhead at one uncontended decrement.
    if (quiescent)
        drain_cv_.notifyAll();
}

bool
ThreadPool::pendingLocked() const
{
    for (const auto& d : deques_)
        if (!d.empty())
            return true;
    return false;
}

void
ThreadPool::drain()
{
    if (tls_pool == this)
        panic("ThreadPool::drain called from inside a pool task");
    MutexLock lock(mu_);
    draining_ = true;
    while (active_ != 0 || pendingLocked())
        drain_cv_.wait(lock);
}

bool
ThreadPool::draining() const
{
    MutexLock lock(mu_);
    return draining_;
}

PoolStats
ThreadPool::stats() const
{
    PoolStats s;
    s.tasksExecuted = tasks_executed_.load(std::memory_order_relaxed);
    s.busySeconds =
        static_cast<double>(busy_ns_.load(std::memory_order_relaxed)) *
        1e-9;
    {
        MutexLock lock(mu_);
        for (const auto& d : deques_)
            s.queueDepth += d.size();
        s.active = active_;
        s.steals = steals_;
        s.draining = draining_;
    }
    s.threads = size();
    return s;
}

void
ThreadPool::helpWhile(const std::function<bool()>& busy)
{
    while (busy()) {
        if (!tryRunOne()) {
            // Nothing to steal: the awaited task is already running on
            // another thread. Back off briefly instead of spinning.
            std::this_thread::yield();
            // Backoff affects wall-clock only. wglint:allow(D1)
            std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
    }
}

void
ThreadPool::workerLoop(unsigned index)
{
    tls_pool = this;
    tls_index = index;
    for (;;) {
        std::function<void()> task;
        {
            MutexLock lock(mu_);
            while (!stop_ && !pendingLocked())
                cv_.wait(lock);
            if (stop_ && !popTask(index, task))
                return;
            if (!task && !popTask(index, task))
                continue;
            ++active_;
        }
        runTask(task);
        finishTask();
    }
}

} // namespace wg
