/**
 * @file
 * Minimal gem5-style logging and error-exit helpers.
 *
 * panic()  - an internal invariant was violated; this is a simulator bug.
 * fatal()  - the simulation cannot continue due to a user error (bad
 *            configuration, invalid arguments).
 * warn()   - something is questionable but the simulation continues.
 * inform() - status messages.
 */

#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace wg {

/** Severity levels understood by the logger. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

/**
 * Route a formatted message to the log sink. Fatal exits with status 1;
 * Panic aborts (core-dump friendly). Both are [[noreturn]] through the
 * convenience wrappers below.
 */
void logMessage(LogLevel level, const std::string& msg);

/**
 * Tee every logMessage() call (including quiet-suppressed informs)
 * into @p hook before the stderr write; pass nullptr to remove. The
 * hook runs with the logger's lock held, so it must not log. Used by
 * wgservd to mirror warn/inform traffic into its structured event log.
 */
void setLogHook(std::function<void(LogLevel, const std::string&)> hook);

/** Suppress / restore inform() output (used by tests and benches). */
void setQuiet(bool quiet);

/** @return true when inform() output is suppressed. */
bool isQuiet();

namespace detail {

inline void
formatInto(std::ostringstream&)
{
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream& os, const T& value, const Rest&... rest)
{
    os << value;
    formatInto(os, rest...);
}

template <typename... Args>
std::string
concat(const Args&... args)
{
    std::ostringstream os;
    formatInto(os, args...);
    return os.str();
}

} // namespace detail

/** Report an unrecoverable internal error and abort. */
template <typename... Args>
[[noreturn]] void
panic(const Args&... args)
{
    logMessage(LogLevel::Panic, detail::concat(args...));
    __builtin_unreachable();
}

/** Report an unrecoverable user error and exit(1). */
template <typename... Args>
[[noreturn]] void
fatal(const Args&... args)
{
    logMessage(LogLevel::Fatal, detail::concat(args...));
    __builtin_unreachable();
}

/** Report a suspicious-but-survivable condition. */
template <typename... Args>
void
warn(const Args&... args)
{
    logMessage(LogLevel::Warn, detail::concat(args...));
}

/** Report a status message. */
template <typename... Args>
void
inform(const Args&... args)
{
    logMessage(LogLevel::Inform, detail::concat(args...));
}

} // namespace wg

