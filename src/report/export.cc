#include "export.hh"

#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace wg {

namespace {

/** Escape a string for a JSON literal. */
std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out += c;
        }
    }
    return out;
}

void
jsonHistogram(std::ostringstream& os, const Histogram& h)
{
    os << "{\"bins\":[";
    for (std::uint64_t b = 0; b <= h.maxBin(); ++b) {
        if (b)
            os << ',';
        os << h.bin(b);
    }
    os << "],\"overflow\":" << h.overflow() << ",\"total\":" << h.total()
       << ",\"sum\":" << h.sum() << "}";
}

void
jsonTypeStats(std::ostringstream& os, const PgDomainStats& s)
{
    os << "{\"busy\":" << s.busyCycles << ",\"idle_on\":" << s.idleOnCycles
       << ",\"uncomp\":" << s.uncompCycles << ",\"comp\":" << s.compCycles
       << ",\"wakeup_cycles\":" << s.wakeupCycles
       << ",\"gating_events\":" << s.gatingEvents
       << ",\"wakeups\":" << s.wakeups
       << ",\"uncomp_wakeups\":" << s.uncompWakeups
       << ",\"critical_wakeups\":" << s.criticalWakeups << "}";
}

void
jsonEnergy(std::ostringstream& os, const UnitEnergy& e)
{
    os << "{\"dynamic_j\":" << e.dynamicE << ",\"static_j\":" << e.staticE
       << ",\"overhead_j\":" << e.overheadE
       << ",\"static_saved_j\":" << e.staticSaved
       << ",\"static_no_pg_j\":" << e.staticNoPg
       << ",\"savings_ratio\":" << e.staticSavingsRatio() << "}";
}

double
busyFraction(const SimResult& r, UnitClass uc)
{
    if (r.totalSmCycles == 0)
        return 0.0;
    return static_cast<double>(r.typeStats(uc).busyCycles) /
           (2.0 * static_cast<double>(r.totalSmCycles));
}

} // namespace

std::string
csvHeader()
{
    return "label,scheduler,pg_policy,adaptive,num_sms,cycles,ipc,"
           "avg_active_warps,int_busy_frac,fp_busy_frac,"
           "int_static_savings,fp_static_savings,int_wakeups,fp_wakeups,"
           "int_critical,fp_critical,int_gating_events,fp_gating_events,"
           "mem_misses";
}

std::string
toCsvRow(const std::string& label, const SimResult& r)
{
    PgDomainStats si = r.typeStats(UnitClass::Int);
    PgDomainStats sf = r.typeStats(UnitClass::Fp);
    std::ostringstream os;
    os << label << ','
       << schedulerPolicyName(r.config.sm.scheduler) << ','
       << pgPolicyName(r.config.sm.pg.policy) << ','
       << (r.config.sm.pg.adaptiveIdleDetect ? 1 : 0) << ','
       << r.config.numSms << ',' << r.cycles << ',' << r.ipc() << ','
       << r.aggregate.avgActiveWarps() << ','
       << busyFraction(r, UnitClass::Int) << ','
       << busyFraction(r, UnitClass::Fp) << ','
       << r.intEnergy.staticSavingsRatio() << ','
       << r.fpEnergy.staticSavingsRatio() << ',' << si.wakeups << ','
       << sf.wakeups << ',' << si.criticalWakeups << ','
       << sf.criticalWakeups << ',' << si.gatingEvents << ','
       << sf.gatingEvents << ',' << r.aggregate.memMisses;
    return os.str();
}

std::string
toJson(const std::string& label, const SimResult& r)
{
    std::ostringstream os;
    os << "{\n  \"label\": \"" << jsonEscape(label) << "\",\n";
    os << "  \"config\": {\"scheduler\": \""
       << schedulerPolicyName(r.config.sm.scheduler)
       << "\", \"pg_policy\": \"" << pgPolicyName(r.config.sm.pg.policy)
       << "\", \"adaptive\": "
       << (r.config.sm.pg.adaptiveIdleDetect ? "true" : "false")
       << ", \"idle_detect\": " << r.config.sm.pg.idleDetect
       << ", \"break_even\": " << r.config.sm.pg.breakEven
       << ", \"wakeup_delay\": " << r.config.sm.pg.wakeupDelay
       << ", \"num_sms\": " << r.config.numSms << "},\n";
    os << "  \"cycles\": " << r.cycles << ",\n";
    os << "  \"total_sm_cycles\": " << r.totalSmCycles << ",\n";
    os << "  \"ipc\": " << r.ipc() << ",\n";
    os << "  \"avg_active_warps\": " << r.aggregate.avgActiveWarps()
       << ",\n";
    os << "  \"instructions\": " << r.aggregate.issuedTotal << ",\n";

    os << "  \"int\": {\"stats\": ";
    jsonTypeStats(os, r.typeStats(UnitClass::Int));
    os << ", \"energy\": ";
    jsonEnergy(os, r.intEnergy);
    os << ", \"idle_histogram\": ";
    jsonHistogram(os, r.intIdleHist);
    os << "},\n";

    os << "  \"fp\": {\"stats\": ";
    jsonTypeStats(os, r.typeStats(UnitClass::Fp));
    os << ", \"energy\": ";
    jsonEnergy(os, r.fpEnergy);
    os << ", \"idle_histogram\": ";
    jsonHistogram(os, r.fpIdleHist);
    os << "}\n}";
    return os.str();
}

void
writeFile(const std::string& path, const std::string& content)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open '", path, "' for writing");
    out << content;
    if (!out)
        fatal("write to '", path, "' failed");
}

} // namespace wg
