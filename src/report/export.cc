#include "export.hh"

#include <fstream>
#include <ostream>
#include <sstream>

#include "common/logging.hh"
#include "common/table.hh"

namespace wg {

namespace {

/** Escape a string for a JSON literal. */
std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out += c;
        }
    }
    return out;
}

void
jsonHistogram(std::ostringstream& os, const Histogram& h)
{
    os << "{\"bins\":[";
    for (std::uint64_t b = 0; b <= h.maxBin(); ++b) {
        if (b)
            os << ',';
        os << h.bin(b);
    }
    os << "],\"overflow\":" << h.overflow() << ",\"total\":" << h.total()
       << ",\"sum\":" << h.sum() << "}";
}

void
jsonTypeStats(std::ostringstream& os, const PgDomainStats& s)
{
    os << "{\"busy\":" << s.busyCycles << ",\"idle_on\":" << s.idleOnCycles
       << ",\"uncomp\":" << s.uncompCycles << ",\"comp\":" << s.compCycles
       << ",\"wakeup_cycles\":" << s.wakeupCycles
       << ",\"gating_events\":" << s.gatingEvents
       << ",\"wakeups\":" << s.wakeups
       << ",\"uncomp_wakeups\":" << s.uncompWakeups
       << ",\"critical_wakeups\":" << s.criticalWakeups << "}";
}

void
jsonEnergy(std::ostringstream& os, const UnitEnergy& e)
{
    os << "{\"dynamic_j\":" << e.dynamicE << ",\"static_j\":" << e.staticE
       << ",\"overhead_j\":" << e.overheadE
       << ",\"static_saved_j\":" << e.staticSaved
       << ",\"static_no_pg_j\":" << e.staticNoPg
       << ",\"savings_ratio\":" << e.staticSavingsRatio() << "}";
}

double
busyFraction(const SimResult& r, UnitClass uc)
{
    if (r.totalSmCycles == 0)
        return 0.0;
    return static_cast<double>(r.typeStats(uc).busyCycles) /
           (2.0 * static_cast<double>(r.totalSmCycles));
}

} // namespace

const std::vector<ExportField>&
csvSchema()
{
    // Column order is the wire format; toCsvRow emits in this order.
    static const std::vector<ExportField> schema = {
        {"label", ""},
        {"scheduler", ""},
        {"pg_policy", ""},
        {"adaptive", "config.adaptive"},
        {"num_sms", "config.numSms"},
        {"cycles", "gpu.cycles"},
        {"ipc", "gpu.ipc"},
        {"avg_active_warps", "gpu.avgActiveWarps"},
        {"int_busy_frac", "gpu.pg.int.busyFraction"},
        {"fp_busy_frac", "gpu.pg.fp.busyFraction"},
        {"int_static_savings", "gpu.energy.int.savingsRatio"},
        {"fp_static_savings", "gpu.energy.fp.savingsRatio"},
        {"int_wakeups", "gpu.pg.int.wakeups"},
        {"fp_wakeups", "gpu.pg.fp.wakeups"},
        {"int_critical", "gpu.pg.int.criticalWakeups"},
        {"fp_critical", "gpu.pg.fp.criticalWakeups"},
        {"int_gating_events", "gpu.pg.int.gatingEvents"},
        {"fp_gating_events", "gpu.pg.fp.gatingEvents"},
        {"mem_misses", "gpu.mem.misses"},
    };
    return schema;
}

const std::vector<ExportField>&
jsonSchema()
{
    auto type_block = [](const std::string& json_type,
                         const std::string& reg_type) {
        std::vector<ExportField> fields = {
            {json_type + ".stats.busy", "gpu.pg." + reg_type + ".busyCycles"},
            {json_type + ".stats.idle_on",
             "gpu.pg." + reg_type + ".idleOnCycles"},
            {json_type + ".stats.uncomp",
             "gpu.pg." + reg_type + ".uncompCycles"},
            {json_type + ".stats.comp",
             "gpu.pg." + reg_type + ".compCycles"},
            {json_type + ".stats.wakeup_cycles",
             "gpu.pg." + reg_type + ".wakeupCycles"},
            {json_type + ".stats.gating_events",
             "gpu.pg." + reg_type + ".gatingEvents"},
            {json_type + ".stats.wakeups",
             "gpu.pg." + reg_type + ".wakeups"},
            {json_type + ".stats.uncomp_wakeups",
             "gpu.pg." + reg_type + ".uncompWakeups"},
            {json_type + ".stats.critical_wakeups",
             "gpu.pg." + reg_type + ".criticalWakeups"},
            {json_type + ".energy.dynamic_j",
             "gpu.energy." + reg_type + ".dynamicJ"},
            {json_type + ".energy.static_j",
             "gpu.energy." + reg_type + ".staticJ"},
            {json_type + ".energy.overhead_j",
             "gpu.energy." + reg_type + ".overheadJ"},
            {json_type + ".energy.static_saved_j",
             "gpu.energy." + reg_type + ".staticSavedJ"},
            {json_type + ".energy.static_no_pg_j",
             "gpu.energy." + reg_type + ".staticNoPgJ"},
            {json_type + ".energy.savings_ratio",
             "gpu.energy." + reg_type + ".savingsRatio"},
        };
        return fields;
    };
    static const std::vector<ExportField> schema = [&type_block] {
        std::vector<ExportField> s = {
            {"config.adaptive", "config.adaptive"},
            {"config.idle_detect", "config.idleDetect"},
            {"config.break_even", "config.breakEven"},
            {"config.wakeup_delay", "config.wakeupDelay"},
            {"config.num_sms", "config.numSms"},
            {"cycles", "gpu.cycles"},
            {"total_sm_cycles", "gpu.totalSmCycles"},
            {"ipc", "gpu.ipc"},
            {"avg_active_warps", "gpu.avgActiveWarps"},
            {"instructions", "gpu.instructions"},
        };
        for (const auto& f : type_block("int", "int"))
            s.push_back(f);
        for (const auto& f : type_block("fp", "fp"))
            s.push_back(f);
        return s;
    }();
    return schema;
}

std::string
csvHeader()
{
    std::string header;
    for (const ExportField& f : csvSchema()) {
        if (!header.empty())
            header += ',';
        header += f.column;
    }
    return header;
}

std::string
toCsvRow(const std::string& label, const SimResult& r)
{
    PgDomainStats si = r.typeStats(UnitClass::Int);
    PgDomainStats sf = r.typeStats(UnitClass::Fp);
    std::ostringstream os;
    os << label << ','
       << schedulerPolicyName(r.config.sm.scheduler) << ','
       << pgPolicyName(r.config.sm.pg.policy) << ','
       << (r.config.sm.pg.adaptiveIdleDetect ? 1 : 0) << ','
       << r.config.numSms << ',' << r.cycles << ',' << r.ipc() << ','
       << r.aggregate.avgActiveWarps() << ','
       << busyFraction(r, UnitClass::Int) << ','
       << busyFraction(r, UnitClass::Fp) << ','
       << r.intEnergy.staticSavingsRatio() << ','
       << r.fpEnergy.staticSavingsRatio() << ',' << si.wakeups << ','
       << sf.wakeups << ',' << si.criticalWakeups << ','
       << sf.criticalWakeups << ',' << si.gatingEvents << ','
       << sf.gatingEvents << ',' << r.aggregate.memMisses;
    return os.str();
}

std::string
toJson(const std::string& label, const SimResult& r)
{
    std::ostringstream os;
    os << "{\n  \"label\": \"" << jsonEscape(label) << "\",\n";
    os << "  \"config\": {\"scheduler\": \""
       << schedulerPolicyName(r.config.sm.scheduler)
       << "\", \"pg_policy\": \"" << pgPolicyName(r.config.sm.pg.policy)
       << "\", \"adaptive\": "
       << (r.config.sm.pg.adaptiveIdleDetect ? "true" : "false")
       << ", \"idle_detect\": " << r.config.sm.pg.idleDetect
       << ", \"break_even\": " << r.config.sm.pg.breakEven
       << ", \"wakeup_delay\": " << r.config.sm.pg.wakeupDelay
       << ", \"num_sms\": " << r.config.numSms << "},\n";
    os << "  \"cycles\": " << r.cycles << ",\n";
    os << "  \"total_sm_cycles\": " << r.totalSmCycles << ",\n";
    os << "  \"ipc\": " << r.ipc() << ",\n";
    os << "  \"avg_active_warps\": " << r.aggregate.avgActiveWarps()
       << ",\n";
    os << "  \"instructions\": " << r.aggregate.issuedTotal << ",\n";

    os << "  \"int\": {\"stats\": ";
    jsonTypeStats(os, r.typeStats(UnitClass::Int));
    os << ", \"energy\": ";
    jsonEnergy(os, r.intEnergy);
    os << ", \"idle_histogram\": ";
    jsonHistogram(os, r.intIdleHist);
    os << "},\n";

    os << "  \"fp\": {\"stats\": ";
    jsonTypeStats(os, r.typeStats(UnitClass::Fp));
    os << ", \"energy\": ";
    jsonEnergy(os, r.fpEnergy);
    os << ", \"idle_histogram\": ";
    jsonHistogram(os, r.fpIdleHist);
    os << "}\n}";
    return os.str();
}

void
printSummary(std::ostream& os, const std::string& label,
             const SimResult& r)
{
    Table table(label + " on " +
                std::string(schedulerPolicyName(r.config.sm.scheduler)) +
                " / " + pgPolicyName(r.config.sm.pg.policy) +
                (r.config.sm.pg.adaptiveIdleDetect ? " + adaptive" : ""));
    table.header({"metric", "INT", "FP"});
    PgDomainStats si = r.typeStats(UnitClass::Int);
    PgDomainStats sf = r.typeStats(UnitClass::Fp);
    auto u64 = [](std::uint64_t v) { return std::to_string(v); };
    table.row({"static savings",
               Table::pct(r.intEnergy.staticSavingsRatio()),
               Table::pct(r.fpEnergy.staticSavingsRatio())});
    table.row({"busy cycles", u64(si.busyCycles), u64(sf.busyCycles)});
    table.row({"gated cycles", u64(si.gatedCycles()),
               u64(sf.gatedCycles())});
    table.row({"gating events", u64(si.gatingEvents),
               u64(sf.gatingEvents)});
    table.row({"wakeups (uncomp)",
               u64(si.wakeups) + " (" + u64(si.uncompWakeups) + ")",
               u64(sf.wakeups) + " (" + u64(sf.uncompWakeups) + ")"});
    table.row({"critical wakeups", u64(si.criticalWakeups),
               u64(sf.criticalWakeups)});
    table.print(os);

    os << "cycles " << r.cycles << ", IPC " << Table::num(r.ipc(), 2)
       << ", avg active warps "
       << Table::num(r.aggregate.avgActiveWarps(), 1) << ", mem misses "
       << r.aggregate.memMisses << "\n\n";
}

void
writeFile(const std::string& path, const std::string& content)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open '", path, "' for writing");
    out << content;
    if (!out)
        fatal("write to '", path, "' failed");
}

} // namespace wg
