/**
 * @file
 * Machine-readable result export: CSV rows and JSON documents for
 * downstream analysis (plotting scripts, regression tracking).
 */

#ifndef WG_REPORT_EXPORT_HH
#define WG_REPORT_EXPORT_HH

#include <iosfwd>
#include <string>

#include "sim/result.hh"

namespace wg {

/**
 * Stable CSV schema for simulation results. Columns:
 * label, scheduler, pg_policy, adaptive, num_sms, cycles, ipc,
 * avg_active_warps, int_busy_frac, fp_busy_frac,
 * int_static_savings, fp_static_savings,
 * int_wakeups, fp_wakeups, int_critical, fp_critical,
 * int_gating_events, fp_gating_events, mem_misses.
 */
std::string csvHeader();

/** One CSV row for @p result, labelled @p label (e.g. the benchmark). */
std::string toCsvRow(const std::string& label, const SimResult& result);

/**
 * JSON document for @p result: configuration summary, headline metrics,
 * per-type gating statistics, energy ledgers, and the idle-period
 * histograms (bins 0..maxBin plus overflow).
 */
std::string toJson(const std::string& label, const SimResult& result);

/** Write @p content to @p path; fatal() on I/O failure. */
void writeFile(const std::string& path, const std::string& content);

} // namespace wg

#endif // WG_REPORT_EXPORT_HH
