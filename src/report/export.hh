/**
 * @file
 * Machine-readable result export: CSV rows and JSON documents for
 * downstream analysis (plotting scripts, regression tracking).
 */

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/result.hh"

namespace wg {

/**
 * One exported CSV column (or dotted JSON path) and the name of the
 * metrics-registry entry (metrics::toStatSet) carrying the same value.
 * `metric` is empty for identification columns (label, policy names)
 * that have no numeric registry twin. The schema-drift guard test
 * cross-checks every mapped field against the registry, so a column
 * added to one export path but not the other fails fast.
 */
struct ExportField
{
    std::string column; ///< CSV column name / dotted JSON path
    std::string metric; ///< registry name, "" for non-numeric columns
};

/** The CSV columns, in order; csvHeader() is generated from this. */
const std::vector<ExportField>& csvSchema();

/**
 * The numeric JSON leaves (as dotted paths, matching
 * metrics::flattenJson) that have a registry twin. Histogram bins are
 * deliberately absent: the registry keeps scalars only.
 */
const std::vector<ExportField>& jsonSchema();

/**
 * Stable CSV schema for simulation results. Columns:
 * label, scheduler, pg_policy, adaptive, num_sms, cycles, ipc,
 * avg_active_warps, int_busy_frac, fp_busy_frac,
 * int_static_savings, fp_static_savings,
 * int_wakeups, fp_wakeups, int_critical, fp_critical,
 * int_gating_events, fp_gating_events, mem_misses.
 */
std::string csvHeader();

/** One CSV row for @p result, labelled @p label (e.g. the benchmark). */
std::string toCsvRow(const std::string& label, const SimResult& result);

/**
 * JSON document for @p result: configuration summary, headline metrics,
 * per-type gating statistics, energy ledgers, and the idle-period
 * histograms (bins 0..maxBin plus overflow).
 */
std::string toJson(const std::string& label, const SimResult& result);

/**
 * The human-readable per-benchmark summary (the INT/FP gating table
 * plus the cycles/IPC line). Shared by wgsim and wgctl so a served
 * result prints byte-identically to an offline run.
 */
void printSummary(std::ostream& os, const std::string& label,
                  const SimResult& result);

/** Write @p content to @p path; fatal() on I/O failure. */
void writeFile(const std::string& path, const std::string& content);

} // namespace wg

