#include "scoreboard.hh"

#include "common/logging.hh"

namespace wg {

Scoreboard::Scoreboard(std::size_t num_warps)
    : pending_(num_warps, 0), pendingLong_(num_warps, 0)
{
}

void
Scoreboard::markIssued(WarpId warp, const Instruction& instr)
{
    if (instr.dest == kNoReg)
        return;
    std::uint32_t b = bit(instr.dest);
    if (pending_[warp] & b)
        panic("scoreboard: WAW violation, warp ", warp, " reg ",
              instr.dest);
    pending_[warp] |= b;
    if (instr.isLongLatency())
        pendingLong_[warp] |= b;
}

void
Scoreboard::complete(WarpId warp, RegId reg)
{
    std::uint32_t b = bit(reg);
    pending_[warp] &= ~b;
    pendingLong_[warp] &= ~b;
}

bool
Scoreboard::clean(WarpId warp) const
{
    return pending_[warp] == 0;
}

void
Scoreboard::reset()
{
    for (auto& m : pending_)
        m = 0;
    for (auto& m : pendingLong_)
        m = 0;
}

} // namespace wg
