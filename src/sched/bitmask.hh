/**
 * @file
 * Word-wide warp bitmask helpers for the scheduler hot path.
 *
 * The SM tracks at most 64 resident warps (kMaxWarpsPerSm), so every
 * per-warp predicate the issue loop needs — active-set membership,
 * head-class readiness, long-latency blockage, fetchability, drain —
 * fits in one 64-bit word and is maintained incrementally as events
 * happen instead of being re-derived warp-by-warp every cycle.
 * Selection then reduces to a handful of word-wide operations
 * (firstHot / countr_zero rotations) instead of list walks.
 */

#pragma once

#include <bit>
#include <cstdint>

#include "common/types.hh"

namespace wg {

/** One bit per resident warp; bit w == warp id w. */
using WarpMask = std::uint64_t;

/** Hard cap on resident warps per SM (one mask word). */
inline constexpr std::size_t kMaxWarpsPerSm = 64;

/** Mask with only warp @p w's bit set. */
constexpr WarpMask
warpBit(WarpId w)
{
    return WarpMask{1} << w;
}

/** @return true when warp @p w's bit is set in @p m. */
constexpr bool
hasWarp(WarpMask m, WarpId w)
{
    return (m >> w) & WarpMask{1};
}

/**
 * Isolate the first (lowest) set bit of @p x; 0 when @p x is 0.
 * The classic two's-complement idiom: x & -x.
 */
constexpr WarpMask
firstHot(WarpMask x)
{
    return x & (~x + 1);
}

/** Index of the first (lowest) set bit; 64 when @p x is 0. */
constexpr WarpId
firstHotIndex(WarpMask x)
{
    return static_cast<WarpId>(std::countr_zero(x));
}

/** Clear the first (lowest) set bit of @p x. */
constexpr WarpMask
dropFirstHot(WarpMask x)
{
    return x & (x - 1);
}

/** Number of set bits. */
constexpr std::uint32_t
popcount(WarpMask x)
{
    return static_cast<std::uint32_t>(std::popcount(x));
}

/**
 * Invoke @p fn(WarpId) for every set bit of @p m in ascending warp-id
 * order (the deterministic bit-iteration order wglint D2 requires of
 * result-affecting loops).
 */
template <typename Fn>
constexpr void
forEachWarp(WarpMask m, Fn&& fn)
{
    while (m) {
        fn(firstHotIndex(m));
        m = dropFirstHot(m);
    }
}

} // namespace wg
