/**
 * @file
 * Warp-scheduler interface.
 *
 * A scheduler's job each cycle is (a) to observe the state of the
 * active-warps set (typed ready/active counters, power-gating state of
 * the INT/FP clusters) and (b) to order the issue-ready active warps
 * into a candidate list. The SM walks the list, issuing up to
 * issue-width instructions subject to structural checks.
 *
 * The view is bitmask/SoA based: per-class 64-bit ready masks (bit w =
 * warp w's head is class c, scoreboard-ready, and the warp is in the
 * active set), the active-set membership mask, and a pointer into the
 * SM's least-recently-issued order of the active set. Scheduler
 * policies reduce to word-wide mask operations (GTO is a pure
 * firstHot rotation) plus, where the policy is LRI-relative (GATES,
 * two-level), one masked pass over the LRI array.
 *
 * Mask invariants (checked by tests, documented in DESIGN.md §14):
 *   readyMask[c] ⊆ activeMask           (ready warps are active)
 *   readyMask[a] ∩ readyMask[b] = ∅     (one head class per warp)
 *   popcount(readyMask[c]) == rdy[c]
 */

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "arch/instr.hh"
#include "common/types.hh"
#include "sched/bitmask.hh"
#include "trace/recorder.hh"

namespace wg {

/**
 * Per-cycle view of the active warps set handed to the scheduler before
 * candidate ordering. Mirrors the counters the paper adds in Fig. 7 —
 * INT_ACTV/FP_ACTV (decoded instructions of each type in the active
 * subset) and the per-type ready counters (INT_RDY, FP_RDY, SFU_RDY,
 * LDST_RDY) — plus the per-class ready bitmasks those counters are the
 * popcounts of, and the blackout status of the gateable clusters for
 * Coordinated Blackout's priority-switch extension.
 */
struct SchedView
{
    /** Decoded i-buffer instructions of class c across active warps. */
    std::array<std::uint32_t, kNumUnitClasses> actv = {};
    /** Active warps whose head instruction is class c and ready. */
    std::array<std::uint32_t, kNumUnitClasses> rdy = {};
    /** Bitmask form of rdy: bit w set iff warp w is a class-c ready
     *  head in the active set. Disjoint across classes. */
    std::array<WarpMask, kNumUnitClasses> readyMask = {};
    /** Warps currently in the active set. */
    WarpMask activeMask = 0;
    /** Active warps in least-recently-issued order (front = LRI);
     *  numActive entries. Null in synthetic views (treated as empty). */
    const WarpId* lri = nullptr;
    std::size_t numActive = 0;
    /** Per-warp head class, indexed by warp id (SoA; valid for every
     *  warp with a readyMask bit). Null in synthetic views. */
    const UnitClass* headClass = nullptr;
    /** Power-gated (blackout) state of INT clusters 0/1. */
    std::array<bool, 2> intBlackout = {false, false};
    /** Power-gated (blackout) state of FP clusters 0/1. */
    std::array<bool, 2> fpBlackout = {false, false};

    /** Union of the per-class ready masks. */
    WarpMask
    readyAny() const
    {
        return readyMask[0] | readyMask[1] | readyMask[2] | readyMask[3];
    }
};

/**
 * Checkpoint state shared by every scheduler policy. One flat struct
 * instead of a per-policy hierarchy keeps the snapshot codec a single
 * field table; policies use the subset they need and leave the rest at
 * the defaults (which restore as no-ops for them).
 */
struct SchedulerState {
    std::uint8_t hiClass = 0;     ///< GATES hi_ / two-level last_issued_
                                  ///< / GTO last_class_ (UnitClass)
    Cycle lastSwitch = 0;         ///< GATES last priority-switch cycle
    std::uint64_t switches = 0;   ///< GATES dynamic switch count
    std::uint32_t greedyWarp = ~std::uint32_t(0); ///< GTO greedy warp
    Cycle now = 0;                ///< GTO latched cycle
};

/**
 * Abstract warp scheduler. Implementations: TwoLevelScheduler (the
 * Gebhart-style baseline), GatesScheduler (the paper's contribution)
 * and GtoScheduler (GPGPU-Sim's default, an extra baseline).
 */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    /** Observe this cycle's active-set state; update internal priority. */
    virtual void beginCycle(Cycle now, const SchedView& view) = 0;

    /**
     * Order issue candidates: the ready warps (view.readyAny()),
     * highest priority first, written to @p out as warp ids. Warps
     * without a ready head are never candidates — a failed readiness
     * probe has no side effects, so omitting them cannot change which
     * warps issue.
     */
    virtual void order(const SchedView& view,
                       std::vector<WarpId>& out) = 0;

    /** Notification that a candidate actually issued. */
    virtual void notifyIssue(WarpId warp, UnitClass uc) = 0;

    /**
     * First cycle >= @p now at which beginCycle under this (constant)
     * view would change scheduler state in a way a plain per-cycle
     * replay (fastForward) could not reproduce, bounding how far the
     * SM may fast-forward. kNeverCycle when every future cycle is
     * replayable. The conservative default disables fast-forwarding
     * for schedulers that do not opt in.
     */
    virtual Cycle
    nextEventCycle(Cycle now, const SchedView& view) const
    {
        (void)view;
        return now;
    }

    /**
     * Replay the skipped cycles [from, from + n) under the constant
     * @p view. The default replays beginCycle per cycle, which is
     * exact for any scheduler; implementations override it with an
     * O(1) (or early-exit) equivalent where possible.
     */
    virtual void
    fastForward(Cycle from, Cycle n, const SchedView& view)
    {
        for (Cycle i = 0; i < n; ++i)
            beginCycle(from + i, view);
    }

    /** Highest-priority class this cycle (diagnostics / tests). */
    virtual UnitClass highestPriority() const = 0;

    /** Count of dynamic priority switches (diagnostics). */
    virtual std::uint64_t prioritySwitches() const { return 0; }

    /** Capture policy state into @p out (checkpoint). Stateless
     *  policies keep the defaults. */
    virtual void saveState(SchedulerState& out) const { (void)out; }

    /** Restore policy state captured by saveState(). */
    virtual void restoreState(const SchedulerState& s) { (void)s; }

    /** Attach a trace recorder (null = tracing off). */
    void setTrace(trace::Recorder* recorder) { trace_ = recorder; }

  protected:
    trace::Recorder* trace_ = nullptr;
};

} // namespace wg
