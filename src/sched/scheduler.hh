/**
 * @file
 * Warp-scheduler interface.
 *
 * A scheduler's job each cycle is (a) to observe the state of the
 * active-warps set (typed ready/active counters, power-gating state of
 * the INT/FP clusters) and (b) to order the active warps into an issue
 * candidate list. The SM walks the list, issuing up to issue-width
 * instructions subject to scoreboard and structural checks.
 */

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "arch/instr.hh"
#include "common/types.hh"
#include "trace/recorder.hh"

namespace wg {

/**
 * Per-cycle view of the active warps set handed to the scheduler before
 * candidate ordering. Mirrors the counters the paper adds in Fig. 7:
 * INT_ACTV/FP_ACTV (warps of each type in the active subset) and the
 * per-type ready counters (INT_RDY, FP_RDY, SFU_RDY, LDST_RDY), plus
 * blackout status of the gateable clusters for Coordinated Blackout's
 * priority-switch extension.
 */
struct SchedView
{
    /** Warps in the active subset whose head instruction is class c. */
    std::array<std::uint32_t, kNumUnitClasses> actv = {};
    /** ... and whose head instruction is also ready (scoreboard). */
    std::array<std::uint32_t, kNumUnitClasses> rdy = {};
    /** Power-gated (blackout) state of INT clusters 0/1. */
    std::array<bool, 2> intBlackout = {false, false};
    /** Power-gated (blackout) state of FP clusters 0/1. */
    std::array<bool, 2> fpBlackout = {false, false};
};

/**
 * Abstract warp scheduler. Implementations: TwoLevelScheduler (the
 * Gebhart-style baseline) and GatesScheduler (the paper's contribution).
 */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    /** Observe this cycle's active-set state; update internal priority. */
    virtual void beginCycle(Cycle now, const SchedView& view) = 0;

    /**
     * Order issue candidates.
     * @param active active-set warp ids in least-recently-issued order
     * @param head_type head-instruction class per candidate (parallel
     *        array to @p active)
     * @param out candidate warp indices *into @p active*, highest
     *        priority first
     */
    virtual void order(const std::vector<WarpId>& active,
                       const std::vector<UnitClass>& head_type,
                       std::vector<std::size_t>& out) = 0;

    /** Notification that a candidate actually issued. */
    virtual void notifyIssue(WarpId warp, UnitClass uc) = 0;

    /**
     * First cycle >= @p now at which beginCycle under this (constant)
     * view would change scheduler state in a way a plain per-cycle
     * replay (fastForward) could not reproduce, bounding how far the
     * SM may fast-forward. kNeverCycle when every future cycle is
     * replayable. The conservative default disables fast-forwarding
     * for schedulers that do not opt in.
     */
    virtual Cycle
    nextEventCycle(Cycle now, const SchedView& view) const
    {
        (void)view;
        return now;
    }

    /**
     * Replay the skipped cycles [from, from + n) under the constant
     * @p view. The default replays beginCycle per cycle, which is
     * exact for any scheduler; implementations override it with an
     * O(1) (or early-exit) equivalent where possible.
     */
    virtual void
    fastForward(Cycle from, Cycle n, const SchedView& view)
    {
        for (Cycle i = 0; i < n; ++i)
            beginCycle(from + i, view);
    }

    /** Highest-priority class this cycle (diagnostics / tests). */
    virtual UnitClass highestPriority() const = 0;

    /** Count of dynamic priority switches (diagnostics). */
    virtual std::uint64_t prioritySwitches() const { return 0; }

    /** Attach a trace recorder (null = tracing off). */
    void setTrace(trace::Recorder* recorder) { trace_ = recorder; }

  protected:
    trace::Recorder* trace_ = nullptr;
};

} // namespace wg

