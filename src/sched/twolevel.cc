#include "twolevel.hh"

namespace wg {

void
TwoLevelScheduler::beginCycle(Cycle now, const SchedView& view)
{
    (void)now;
    (void)view;
}

void
TwoLevelScheduler::order(const SchedView& view, std::vector<WarpId>& out)
{
    out.clear();
    const WarpMask ready = view.readyAny();
    if (ready == 0)
        return;
    out.reserve(static_cast<std::size_t>(popcount(ready)));
    for (std::size_t i = 0; i < view.numActive; ++i) {
        const WarpId w = view.lri[i];
        if (hasWarp(ready, w))
            out.push_back(w);
    }
}

void
TwoLevelScheduler::notifyIssue(WarpId warp, UnitClass uc)
{
    (void)warp;
    last_issued_ = uc;
}

UnitClass
TwoLevelScheduler::highestPriority() const
{
    // The baseline has no type priority; report the last issued class.
    return last_issued_;
}

} // namespace wg
