#include "twolevel.hh"

namespace wg {

void
TwoLevelScheduler::beginCycle(Cycle now, const SchedView& view)
{
    (void)now;
    (void)view;
}

void
TwoLevelScheduler::order(const std::vector<WarpId>& active,
                         const std::vector<UnitClass>& head_type,
                         std::vector<std::size_t>& out)
{
    (void)head_type;
    out.clear();
    out.reserve(active.size());
    for (std::size_t i = 0; i < active.size(); ++i)
        out.push_back(i);
}

void
TwoLevelScheduler::notifyIssue(WarpId warp, UnitClass uc)
{
    (void)warp;
    last_issued_ = uc;
}

UnitClass
TwoLevelScheduler::highestPriority() const
{
    // The baseline has no type priority; report the last issued class.
    return last_issued_;
}

} // namespace wg
