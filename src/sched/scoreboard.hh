/**
 * @file
 * Register scoreboard.
 *
 * Tracks, per warp, which architectural registers have an in-flight
 * producer, and whether that producer is a long-latency operation (a
 * global-miss load). The latter drives two-level active/pending
 * residency: a warp whose head instruction is blocked by a long-latency
 * producer is demoted to the pending set.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "arch/instr.hh"
#include "common/types.hh"

namespace wg {

/**
 * Bitmask scoreboard over a 16-register window per warp (the synthetic
 * programs use registers 0..15).
 */
class Scoreboard
{
  public:
    /** @param num_warps warps tracked. */
    explicit Scoreboard(std::size_t num_warps);

    /** @return true when @p instr has no RAW/WAW hazard for @p warp. */
    bool
    ready(WarpId warp, const Instruction& instr) const
    {
        return (maskOf(instr) & pending_[warp]) == 0;
    }

    /**
     * @return true when @p instr is blocked specifically by a
     * long-latency producer (implies !ready()).
     */
    bool
    blockedOnLong(WarpId warp, const Instruction& instr) const
    {
        return (maskOf(instr) & pendingLong_[warp]) != 0;
    }

    /**
     * Register-mask probes for the incremental ready-bit protocol: the
     * SM caches each warp's head-instruction regMask() and re-ANDs it
     * against these words only when an issue / completion / fetch event
     * touches that warp, instead of re-probing every warp every cycle.
     */
    bool
    readyMask(WarpId warp, std::uint32_t reg_mask) const
    {
        return (reg_mask & pending_[warp]) == 0;
    }

    /** Mask analogue of blockedOnLong(). */
    bool
    blockedOnLongMask(WarpId warp, std::uint32_t reg_mask) const
    {
        return (reg_mask & pendingLong_[warp]) != 0;
    }

    /** Record @p instr issuing from @p warp. */
    void markIssued(WarpId warp, const Instruction& instr);

    /** Producer of (warp, reg) completed; clears the pending bit. */
    void complete(WarpId warp, RegId reg);

    /** @return true when the warp has no pending registers. */
    bool clean(WarpId warp) const;

    /** Reset all state. */
    void reset();

    // --- checkpoint/resume ---

    /** Raw pending-producer word for @p warp (checkpoint capture). */
    std::uint32_t pendingWord(WarpId warp) const { return pending_[warp]; }

    /** Raw long-latency-producer word for @p warp. */
    std::uint32_t
    pendingLongWord(WarpId warp) const
    {
        return pendingLong_[warp];
    }

    /** Overwrite both scoreboard words for @p warp from a checkpoint. */
    void
    restoreWords(WarpId warp, std::uint32_t pending,
                 std::uint32_t pending_long)
    {
        pending_[warp] = pending;
        pendingLong_[warp] = pending_long;
    }

  private:
    /** Bit over registers 0..15. */
    static std::uint32_t
    bit(RegId reg)
    {
        return 1u << (reg & 15u);
    }

    static std::uint32_t
    maskOf(const Instruction& instr)
    {
        return instr.regMask();
    }

    std::vector<std::uint32_t> pending_;     ///< in-flight producers
    std::vector<std::uint32_t> pendingLong_; ///< ... that are long-latency
};

} // namespace wg

