/**
 * @file
 * Greedy-Then-Oldest (GTO) warp scheduler.
 *
 * Not part of the paper's evaluation (it uses the two-level scheduler
 * as baseline), but GTO is GPGPU-Sim's default scheduler and the
 * standard point of comparison in the scheduling literature, so the
 * library ships it for scheduler studies: keep issuing from the same
 * warp while it stays ready ("greedy"), otherwise fall back to the
 * oldest warp.
 */

#pragma once

#include "sched/scheduler.hh"

namespace wg {

/** Greedy-then-oldest candidate ordering. */
class GtoScheduler : public Scheduler
{
  public:
    void beginCycle(Cycle now, const SchedView& view) override;

    /**
     * Candidate order: the last-issued warp first (greedy, if still
     * ready), then the remaining ready warps by warp id (age proxy:
     * lower ids were launched earlier). Ascending-id order makes this
     * a pure firstHot rotation over the ready mask — no sort.
     */
    void order(const SchedView& view, std::vector<WarpId>& out) override;

    void notifyIssue(WarpId warp, UnitClass uc) override;

    UnitClass highestPriority() const override { return last_class_; }

    /**
     * beginCycle only latches `now` for notifyIssue's trace timestamp,
     * and an issue cycle always runs a real beginCycle first — skipped
     * cycles never bound a fast-forward.
     */
    Cycle
    nextEventCycle(Cycle now, const SchedView& view) const override
    {
        (void)now;
        (void)view;
        return kNeverCycle;
    }

    void
    fastForward(Cycle from, Cycle n, const SchedView& view) override
    {
        (void)from;
        (void)n;
        (void)view;
    }

    void
    saveState(SchedulerState& out) const override
    {
        out.hiClass = static_cast<std::uint8_t>(last_class_);
        out.greedyWarp = greedy_warp_;
        out.now = now_;
    }

    void
    restoreState(const SchedulerState& s) override
    {
        last_class_ = static_cast<UnitClass>(s.hiClass);
        greedy_warp_ = s.greedyWarp;
        now_ = s.now;
    }

  private:
    WarpId greedy_warp_ = ~WarpId(0);
    UnitClass last_class_ = UnitClass::Int;
    Cycle now_ = 0;
};

} // namespace wg
