/**
 * @file
 * Baseline two-level warp scheduler (Gebhart et al., ISCA 2011), as used
 * by the paper's baseline: issue from the active warps set in
 * least-recently-issued order, with no regard for instruction type.
 */

#pragma once

#include "sched/scheduler.hh"

namespace wg {

/**
 * Type-agnostic round-robin over the active set. The SM maintains the
 * least-recently-issued ordering of the active list, so ordering here is
 * the LRI sequence masked down to the ready warps.
 */
class TwoLevelScheduler : public Scheduler
{
  public:
    void beginCycle(Cycle now, const SchedView& view) override;

    void order(const SchedView& view, std::vector<WarpId>& out) override;

    void notifyIssue(WarpId warp, UnitClass uc) override;

    UnitClass highestPriority() const override;

    /** beginCycle is a no-op: nothing ever bounds a fast-forward. */
    Cycle
    nextEventCycle(Cycle now, const SchedView& view) const override
    {
        (void)now;
        (void)view;
        return kNeverCycle;
    }

    void
    fastForward(Cycle from, Cycle n, const SchedView& view) override
    {
        (void)from;
        (void)n;
        (void)view;
    }

    void
    saveState(SchedulerState& out) const override
    {
        out.hiClass = static_cast<std::uint8_t>(last_issued_);
    }

    void
    restoreState(const SchedulerState& s) override
    {
        last_issued_ = static_cast<UnitClass>(s.hiClass);
    }

  private:
    UnitClass last_issued_ = UnitClass::Int;
};

} // namespace wg
