/**
 * @file
 * GATES — the Gating-Aware Two-level Scheduler (paper Sections 4 and 6).
 *
 * GATES extends the two-level scheduler with a priority-based issue
 * arbiter. Instruction classes are ordered [HI, LDST, SFU, LO] where
 * {HI, LO} = {INT, FP}: the integer and floating-point classes are
 * pushed to the two ends of the priority so that the low-priority unit
 * type enjoys long idle periods while ready warps of its type accumulate.
 *
 * Dynamic priority switching: INT starts as HI. When the HI type's
 * active-warp subset drains while the other type still has active warps
 * (ACTV counters), HI and LO swap. With Coordinated Blackout the
 * priority also switches when both clusters of the HI type are in
 * blackout (paper Section 5).
 */

#pragma once

#include "sched/scheduler.hh"

namespace wg {

/** Tunables for GATES. */
struct GatesConfig
{
    /**
     * Optional fairness bound: force a HI/LO swap after this many
     * cycles without one (0 disables; the paper mentions the designer
     * may set a large maximum switching threshold).
     */
    Cycle maxPriorityHold = 0;

    /** Honour blackout state in priority switching (Coordinated). */
    bool switchOnBlackout = true;
};

/** The gating-aware scheduler. */
class GatesScheduler : public Scheduler
{
  public:
    explicit GatesScheduler(const GatesConfig& config = {});

    void beginCycle(Cycle now, const SchedView& view) override;

    void order(const SchedView& view, std::vector<WarpId>& out) override;

    void notifyIssue(WarpId warp, UnitClass uc) override;

    UnitClass highestPriority() const override { return hi_; }

    /**
     * Under a constant view the switch rules either fire immediately
     * (event at `now`), fire at a known future cycle (the fairness
     * hold), flip-flop every cycle (both types fully gated with active
     * warps on each side — replayable, so not an event), or never fire.
     */
    Cycle nextEventCycle(Cycle now, const SchedView& view) const override;

    /** Per-cycle replay with early exit once the span proves quiet. */
    void fastForward(Cycle from, Cycle n, const SchedView& view) override;

    std::uint64_t prioritySwitches() const override { return switches_; }

    void
    saveState(SchedulerState& out) const override
    {
        out.hiClass = static_cast<std::uint8_t>(hi_);
        out.lastSwitch = last_switch_;
        out.switches = switches_;
    }

    void
    restoreState(const SchedulerState& s) override
    {
        hi_ = static_cast<UnitClass>(s.hiClass);
        last_switch_ = s.lastSwitch;
        switches_ = s.switches;
    }

    // --- switch predicates (shared by beginCycle / nextEventCycle) ---
    //
    // beginCycle and nextEventCycle must agree on when a switch fires:
    // a drifted copy of these conditions would let fast-forward skip
    // over a cycle beginCycle would have switched on (silent result
    // divergence). They are public so the randomized consistency test
    // can drive them directly.

    /** Section 4.1 drain rule: HI subset empty, LO subset non-empty. */
    bool drainSwitchFires(const SchedView& view) const;

    /**
     * Section 5 Coordinated Blackout rule: both HI clusters gated and
     * the LO subset non-empty (and the extension is enabled).
     */
    bool blackoutSwitchFires(const SchedView& view) const;

    /**
     * True when the blackout rule would re-fire every cycle under a
     * constant view: both types fully gated with active warps on each
     * side. The swap alternates HI<->LO each cycle — a uniform
     * flip-flop the fastForward replay reproduces exactly, so it is
     * deliberately NOT a horizon event.
     */
    bool blackoutFlipFlop(const SchedView& view) const;

    /** Fairness rule: hold expired at @p now and LO is non-empty. */
    bool fairnessSwitchFires(Cycle now, const SchedView& view) const;

  private:
    void switchPriority(Cycle now);

    /** The LO class paired with the current HI. */
    UnitClass
    loClass() const
    {
        return hi_ == UnitClass::Int ? UnitClass::Fp : UnitClass::Int;
    }

    /** @return the total class order for the current HI selection. */
    std::array<UnitClass, kNumUnitClasses> classOrder() const;

    GatesConfig config_;
    UnitClass hi_ = UnitClass::Int; ///< current highest-priority class
    Cycle last_switch_ = 0;
    std::uint64_t switches_ = 0;
};

} // namespace wg
