/**
 * @file
 * Per-warp execution context: program counter, instruction buffer, and
 * two-level-scheduler residency state.
 */

#pragma once

#include <cstdint>
#include <deque>

#include "arch/program.hh"
#include "common/types.hh"

namespace wg {

/** Where a warp currently lives in the two-level scheduler. */
enum class WarpLoc : std::uint8_t {
    Active,   ///< in the active warps set (issue-eligible)
    Pending,  ///< waiting on a long-latency event
    Waiting,  ///< eligible to (re)enter the active set, queued on capacity
    Finished, ///< program complete, all results written back
};

/**
 * Mutable state of one warp. The SM owns a vector of these; schedulers
 * see them read-only.
 */
class WarpContext
{
  public:
    WarpContext() = default;

    /** Bind the warp to its program. */
    void
    init(WarpId id, const Program* prog)
    {
        id_ = id;
        prog_ = prog;
        pc_ = 0;
        ibuffer_.clear();
        loc_ = WarpLoc::Waiting;
        outstanding_ = 0;
    }

    WarpId id() const { return id_; }
    WarpLoc loc() const { return loc_; }
    void setLoc(WarpLoc loc) { loc_ = loc; }

    /** Fill the instruction buffer (depth @p depth) from the program. */
    void
    fetch(std::size_t depth)
    {
        while (ibuffer_.size() < depth && prog_ && pc_ < prog_->size())
            ibuffer_.push_back(prog_->at(pc_++));
    }

    /**
     * @return true when fetch(depth) would be a no-op: the buffer is
     * full or the program is exhausted. Holds at every step boundary
     * (fetch tops up fully) and, while nothing issues, stays true —
     * one leg of the fast-forward quiescence proof.
     */
    bool
    fetchDone(std::size_t depth) const
    {
        return ibuffer_.size() >= depth || !prog_ || pc_ >= prog_->size();
    }

    /** @return true when a decoded instruction waits at the head. */
    bool hasHead() const { return !ibuffer_.empty(); }

    /** @return the head (oldest) decoded instruction. */
    const Instruction& head() const { return ibuffer_.front(); }

    /** Remove the head after it issues. */
    void popHead() { ibuffer_.pop_front(); }

    /** All decoded entries (head first). */
    const std::deque<Instruction>& ibuffer() const { return ibuffer_; }

    /** Track in-flight instructions for completion detection. */
    void noteIssue() { ++outstanding_; }
    void noteComplete() { --outstanding_; }
    std::uint32_t outstanding() const { return outstanding_; }

    /** @return true when all instructions fetched, issued and done. */
    bool
    drained() const
    {
        return (!prog_ || pc_ >= prog_->size()) && ibuffer_.empty() &&
               outstanding_ == 0;
    }

    /** Fetched-instruction progress (for tests). */
    std::size_t pc() const { return pc_; }

  private:
    WarpId id_ = 0;
    const Program* prog_ = nullptr;
    std::size_t pc_ = 0;
    std::deque<Instruction> ibuffer_;
    WarpLoc loc_ = WarpLoc::Waiting;
    std::uint32_t outstanding_ = 0;
};

} // namespace wg

