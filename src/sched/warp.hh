/**
 * @file
 * Structure-of-arrays warp state for one SM.
 *
 * The per-warp execution context — program counter, decoded i-buffer,
 * two-level residency, outstanding-instruction count — is stored as
 * parallel arrays indexed by warp id, plus word-wide bitmasks over the
 * warp set (one bit per warp, at most kMaxWarpsPerSm warps):
 *
 *   locMask(loc)    warps currently in residency state `loc`
 *   fetchable()     warps whose next fetch() would push at least one
 *                   instruction (buffer not full, program not exhausted)
 *   drainedMask()   warps with nothing fetched, buffered or in flight
 *
 * The masks are maintained incrementally by the mutators (fetch /
 * popHead / setLoc / noteComplete), never recomputed by scans, so the
 * SM's per-cycle phases reduce to word-wide tests. The i-buffer is a
 * flat ring (depth slots per warp) instead of a per-warp std::deque:
 * no node allocation, no pointer chasing, and popHead() cannot free
 * storage out from under an aliasing reference.
 */

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "arch/program.hh"
#include "common/types.hh"
#include "sched/bitmask.hh"

namespace wg {

/** Where a warp currently lives in the two-level scheduler. */
enum class WarpLoc : std::uint8_t {
    Active,   ///< in the active warps set (issue-eligible)
    Pending,  ///< waiting on a long-latency event
    Waiting,  ///< eligible to (re)enter the active set, queued on capacity
    Finished, ///< program complete, all results written back
};

/** Number of distinct WarpLoc values. */
inline constexpr std::size_t kNumWarpLocs = 4;

/**
 * Checkpoint state of one warp slot. The i-buffer ring is not stored:
 * its contents are exactly instructions [pc - bufSize, pc) of the
 * warp's program, so restore() re-decodes them, and the fetchable /
 * drained bits are pure functions of (pc, bufSize, outstanding) at a
 * step boundary, so they are recomputed rather than captured.
 */
struct WarpSlotState {
    std::uint32_t pc = 0;          ///< instructions fetched so far
    std::uint32_t bufSize = 0;     ///< decoded entries buffered
    std::uint32_t outstanding = 0; ///< issued, not yet written back
    std::uint8_t loc = 0;          ///< WarpLoc residency state
};

/**
 * SoA state of every warp resident on one SM. The SM owns one of
 * these; schedulers see derived masks through the SchedView.
 */
class WarpSet
{
  public:
    WarpSet() = default;

    /**
     * Bind one warp per program and reset all state. Every warp starts
     * Waiting with an empty i-buffer.
     * @param programs one program per warp (size <= kMaxWarpsPerSm)
     * @param depth decoded i-buffer entries per warp (>= 1)
     */
    void
    init(const std::vector<Program>& programs, std::size_t depth)
    {
        n_ = programs.size();
        depth_ = depth;
        progs_.resize(n_);
        progSize_.resize(n_);
        ibuf_.assign(n_ * depth_, Instruction{});
        head_.assign(n_, 0);
        size_.assign(n_, 0);
        pc_.assign(n_, 0);
        outstanding_.assign(n_, 0);
        loc_.assign(n_, WarpLoc::Waiting);
        headClass_.assign(n_, UnitClass::Int);
        headRegMask_.assign(n_, 0);
        bufCls_.assign(n_ * kNumUnitClasses, 0);
        locMask_ = {};
        fetchable_ = 0;
        drained_ = 0;
        for (std::size_t w = 0; w < n_; ++w) {
            progs_[w] = &programs[w];
            progSize_[w] =
                static_cast<std::uint32_t>(programs[w].size());
            locMask_[static_cast<std::size_t>(WarpLoc::Waiting)] |=
                warpBit(static_cast<WarpId>(w));
            if (progSize_[w] > 0)
                fetchable_ |= warpBit(static_cast<WarpId>(w));
            else
                drained_ |= warpBit(static_cast<WarpId>(w));
        }
    }

    std::size_t size() const { return n_; }
    std::size_t depth() const { return depth_; }

    // --- residency ---

    WarpLoc loc(WarpId w) const { return loc_[w]; }

    /** Move @p w between residency states (mask-maintaining). */
    void
    setLoc(WarpId w, WarpLoc to)
    {
        locMask_[static_cast<std::size_t>(loc_[w])] &= ~warpBit(w);
        locMask_[static_cast<std::size_t>(to)] |= warpBit(w);
        loc_[w] = to;
    }

    /** Warps currently in residency state @p loc. */
    WarpMask
    locMask(WarpLoc loc) const
    {
        return locMask_[static_cast<std::size_t>(loc)];
    }

    // --- i-buffer ---

    /** @return true when a decoded instruction waits at the head. */
    bool hasHead(WarpId w) const { return size_[w] != 0; }

    /** The head (oldest) decoded instruction; hasHead() must hold. */
    const Instruction&
    head(WarpId w) const
    {
        return ibuf_[w * depth_ + head_[w]];
    }

    /** Cached head-instruction class (valid while hasHead()). */
    UnitClass headClass(WarpId w) const { return headClass_[w]; }

    /** SoA view of the cached head classes (for SchedView::headClass). */
    const UnitClass* headClassData() const { return headClass_.data(); }

    /** Cached head-instruction scoreboard mask (valid while hasHead()). */
    std::uint32_t headRegMask(WarpId w) const { return headRegMask_[w]; }

    /** The @p i-th buffered instruction (0 = head), i < bufSize(). */
    const Instruction&
    buffered(WarpId w, std::size_t i) const
    {
        std::size_t slot = head_[w] + i;
        if (slot >= depth_)
            slot -= depth_;
        return ibuf_[w * depth_ + slot];
    }

    /** Decoded entries currently buffered. */
    std::size_t bufSize(WarpId w) const { return size_[w]; }

    /** Buffered entries of class @p uc (for incremental ACTV counts). */
    std::uint8_t
    bufCount(WarpId w, UnitClass uc) const
    {
        return bufCls_[w * kNumUnitClasses +
                       static_cast<std::size_t>(uc)];
    }

    /**
     * Remove the head after it issues. Updates the per-class buffer
     * counts, the cached head class/regmask, and the fetchable and
     * drained masks.
     */
    void
    popHead(WarpId w)
    {
        --bufCls_[w * kNumUnitClasses +
                  static_cast<std::size_t>(headClass_[w])];
        std::uint8_t next = static_cast<std::uint8_t>(head_[w] + 1);
        head_[w] = next == depth_ ? 0 : next;
        --size_[w];
        if (size_[w] != 0)
            cacheHead(w);
        if (pc_[w] < progSize_[w])
            fetchable_ |= warpBit(w);
        updateDrained(w);
    }

    /**
     * Top up the i-buffer from the program. When @p actv is non-null
     * (the warp is in the active set), each pushed instruction
     * increments actv[class] — the incremental form of the paper's
     * ACTV counters. @return number of instructions pushed.
     */
    std::size_t
    fetch(WarpId w, std::uint32_t* actv = nullptr)
    {
        std::size_t pushed = 0;
        while (size_[w] < depth_ && pc_[w] < progSize_[w]) {
            std::size_t slot = head_[w] + size_[w];
            if (slot >= depth_)
                slot -= depth_;
            const Instruction& instr = progs_[w]->at(pc_[w]++);
            ibuf_[w * depth_ + slot] = instr;
            ++bufCls_[w * kNumUnitClasses +
                      static_cast<std::size_t>(instr.unit)];
            if (actv)
                ++actv[static_cast<std::size_t>(instr.unit)];
            if (size_[w]++ == 0)
                cacheHead(w);
            ++pushed;
        }
        fetchable_ &= ~warpBit(w);
        if (pushed)
            drained_ &= ~warpBit(w);
        return pushed;
    }

    /**
     * Warps whose next fetch() would push at least one instruction.
     * `(fetchable() & mask) == 0` is the O(1) form of the fast-forward
     * quiescence leg "fetch is a no-op for every warp in mask".
     */
    WarpMask fetchable() const { return fetchable_; }

    /** @return true when fetch(w) would be a no-op. */
    bool fetchDone(WarpId w) const { return !hasWarp(fetchable_, w); }

    // --- in-flight tracking ---

    void
    noteIssue(WarpId w)
    {
        ++outstanding_[w];
        drained_ &= ~warpBit(w); // an in-flight instruction un-drains
    }

    void
    noteComplete(WarpId w)
    {
        --outstanding_[w];
        updateDrained(w);
    }

    std::uint32_t outstanding(WarpId w) const { return outstanding_[w]; }

    /** Warps with all instructions fetched, issued and completed. */
    WarpMask drainedMask() const { return drained_; }

    /** @return true when warp @p w has fully drained. */
    bool drained(WarpId w) const { return hasWarp(drained_, w); }

    /** Fetched-instruction progress (for tests). */
    std::size_t pc(WarpId w) const { return pc_[w]; }

    // --- checkpoint/resume ---

    /** Capture warp @p w's slot state for a checkpoint. */
    WarpSlotState
    saveWarp(WarpId w) const
    {
        WarpSlotState s;
        s.pc = pc_[w];
        s.bufSize = static_cast<std::uint32_t>(size_[w]);
        s.outstanding = outstanding_[w];
        s.loc = static_cast<std::uint8_t>(loc_[w]);
        return s;
    }

    /**
     * Rebuild all warp slots from checkpoint state. Must be called on
     * a WarpSet freshly init()-ed against the same programs; re-decodes
     * each ring from the program and re-derives every cached mask.
     * @return false when a slot is inconsistent with its program
     * (pc out of range, buffer larger than pc or depth).
     */
    bool
    restore(const std::vector<WarpSlotState>& slots)
    {
        if (slots.size() != n_)
            return false;
        locMask_ = {};
        fetchable_ = 0;
        drained_ = 0;
        for (std::size_t w = 0; w < n_; ++w) {
            const WarpSlotState& s = slots[w];
            if (s.pc > progSize_[w] || s.bufSize > depth_ ||
                s.bufSize > s.pc ||
                s.loc >= static_cast<std::uint8_t>(kNumWarpLocs)) {
                return false;
            }
            pc_[w] = s.pc;
            head_[w] = 0;
            size_[w] = static_cast<std::uint8_t>(s.bufSize);
            outstanding_[w] = s.outstanding;
            loc_[w] = static_cast<WarpLoc>(s.loc);
            locMask_[s.loc] |= warpBit(static_cast<WarpId>(w));
            for (std::size_t c = 0; c < kNumUnitClasses; ++c)
                bufCls_[w * kNumUnitClasses + c] = 0;
            for (std::size_t i = 0; i < s.bufSize; ++i) {
                const Instruction& instr =
                    progs_[w]->at(s.pc - s.bufSize + i);
                ibuf_[w * depth_ + i] = instr;
                ++bufCls_[w * kNumUnitClasses +
                          static_cast<std::size_t>(instr.unit)];
            }
            if (s.bufSize != 0)
                cacheHead(static_cast<WarpId>(w));
            if (pc_[w] < progSize_[w] && size_[w] < depth_)
                fetchable_ |= warpBit(static_cast<WarpId>(w));
            updateDrained(static_cast<WarpId>(w));
        }
        return true;
    }

  private:
    /** Re-derive the cached head class/regmask (size_[w] != 0). */
    void
    cacheHead(WarpId w)
    {
        const Instruction& h = ibuf_[w * depth_ + head_[w]];
        headClass_[w] = h.unit;
        headRegMask_[w] = h.regMask();
    }

    void
    updateDrained(WarpId w)
    {
        if (pc_[w] >= progSize_[w] && size_[w] == 0 &&
            outstanding_[w] == 0) {
            drained_ |= warpBit(w);
        } else {
            drained_ &= ~warpBit(w);
        }
    }

    std::size_t n_ = 0;
    std::size_t depth_ = 0;

    std::vector<const Program*> progs_;
    std::vector<std::uint32_t> progSize_;

    // i-buffer: one depth_-slot ring per warp, flat.
    std::vector<Instruction> ibuf_;
    std::vector<std::uint8_t> head_; ///< ring start index per warp
    std::vector<std::uint8_t> size_; ///< buffered entries per warp

    std::vector<std::uint32_t> pc_;
    std::vector<std::uint32_t> outstanding_;
    std::vector<WarpLoc> loc_;
    std::vector<UnitClass> headClass_;      ///< cached head class
    std::vector<std::uint32_t> headRegMask_; ///< cached head regMask()
    std::vector<std::uint8_t> bufCls_; ///< per-warp per-class counts

    std::array<WarpMask, kNumWarpLocs> locMask_ = {};
    WarpMask fetchable_ = 0;
    WarpMask drained_ = 0;
};

} // namespace wg
