#include "gates.hh"

#include "common/logging.hh"

namespace wg {

GatesScheduler::GatesScheduler(const GatesConfig& config) : config_(config)
{
}

void
GatesScheduler::switchPriority(Cycle now)
{
    hi_ = hi_ == UnitClass::Int ? UnitClass::Fp : UnitClass::Int;
    last_switch_ = now;
    ++switches_;
    if (trace_)
        trace_->record(now, trace::EventKind::PrioritySwitch,
                       static_cast<std::uint8_t>(hi_));
}

std::array<UnitClass, kNumUnitClasses>
GatesScheduler::classOrder() const
{
    // [HI, LDST, SFU, LO]; LDST outranks SFU (longer memory latency).
    UnitClass lo = hi_ == UnitClass::Int ? UnitClass::Fp : UnitClass::Int;
    return {hi_, UnitClass::Ldst, UnitClass::Sfu, lo};
}

bool
GatesScheduler::drainSwitchFires(const SchedView& view) const
{
    return view.actv[static_cast<std::size_t>(hi_)] == 0 &&
           view.actv[static_cast<std::size_t>(loClass())] > 0;
}

bool
GatesScheduler::blackoutSwitchFires(const SchedView& view) const
{
    if (!config_.switchOnBlackout)
        return false;
    // If both clusters of the HI type are gated, issuing HI is
    // impossible — flip so LO drains instead (Section 5, last
    // paragraph of Coordinated Blackout).
    const auto& hi_gated =
        hi_ == UnitClass::Int ? view.intBlackout : view.fpBlackout;
    return hi_gated[0] && hi_gated[1] &&
           view.actv[static_cast<std::size_t>(loClass())] > 0;
}

bool
GatesScheduler::blackoutFlipFlop(const SchedView& view) const
{
    if (!blackoutSwitchFires(view))
        return false;
    const auto& lo_gated =
        hi_ == UnitClass::Int ? view.fpBlackout : view.intBlackout;
    return lo_gated[0] && lo_gated[1] &&
           view.actv[static_cast<std::size_t>(hi_)] > 0;
}

bool
GatesScheduler::fairnessSwitchFires(Cycle now, const SchedView& view) const
{
    return config_.maxPriorityHold > 0 &&
           now - last_switch_ >= config_.maxPriorityHold &&
           view.actv[static_cast<std::size_t>(loClass())] > 0;
}

void
GatesScheduler::beginCycle(Cycle now, const SchedView& view)
{
    // Dynamic switching on a drained HI active subset (Section 4.1).
    if (drainSwitchFires(view)) {
        switchPriority(now);
        return;
    }

    // Coordinated Blackout extension.
    if (blackoutSwitchFires(view)) {
        switchPriority(now);
        return;
    }

    // Optional fairness bound.
    if (fairnessSwitchFires(now, view))
        switchPriority(now);
}

Cycle
GatesScheduler::nextEventCycle(Cycle now, const SchedView& view) const
{
    if (drainSwitchFires(view))
        return now;

    if (blackoutSwitchFires(view)) {
        // Both types fully gated with active warps on each side: the
        // swap re-fires every cycle — a uniform flip-flop the
        // fastForward loop replays exactly, not a horizon event.
        if (blackoutFlipFlop(view))
            return kNeverCycle;
        return now;
    }

    if (config_.maxPriorityHold > 0 &&
        view.actv[static_cast<std::size_t>(loClass())] > 0) {
        Cycle forced = last_switch_ + config_.maxPriorityHold;
        return forced < now ? now : forced;
    }
    return kNeverCycle;
}

void
GatesScheduler::fastForward(Cycle from, Cycle n, const SchedView& view)
{
    // Under a constant view, a cycle that does not switch proves no
    // later cycle in the span can (the fairness hold is a horizon
    // event), so one quiet iteration ends the replay. The blackout
    // flip-flop regime switches every iteration and runs the full
    // span, emitting its PrioritySwitch events in cycle order.
    for (Cycle i = 0; i < n; ++i) {
        const std::uint64_t before = switches_;
        beginCycle(from + i, view);
        if (switches_ == before)
            return;
    }
}

void
GatesScheduler::order(const SchedView& view, std::vector<WarpId>& out)
{
    out.clear();
    const WarpMask ready = view.readyAny();
    if (ready == 0)
        return;
    if ((ready & ~view.activeMask) != 0)
        panic("GatesScheduler::order: ready mask not a subset of active");

    // Fast path: one ready warp — no partition needed, and every
    // priority order agrees on a singleton.
    if (dropFirstHot(ready) == 0) {
        out.push_back(firstHotIndex(ready));
        return;
    }

    // Stable partition of the ready warps by class priority, keeping
    // the least-recently-issued order the SM maintains within each
    // class: popcount the per-class ready masks into prefix-sum write
    // cursors, then one masked pass over the LRI array places each
    // ready warp directly. Identical output to four scans.
    const std::array<UnitClass, kNumUnitClasses> prio = classOrder();
    std::array<std::size_t, kNumUnitClasses> cursor = {};
    std::size_t base = 0;
    for (UnitClass uc : prio) {
        cursor[static_cast<std::size_t>(uc)] = base;
        base += popcount(view.readyMask[static_cast<std::size_t>(uc)]);
    }
    out.resize(base);
    for (std::size_t i = 0; i < view.numActive; ++i) {
        const WarpId w = view.lri[i];
        if (!hasWarp(ready, w))
            continue;
        // The per-class ready masks are disjoint, so exactly one
        // holds w — membership doubles as the head-class lookup.
        for (std::size_t c = 0; c < kNumUnitClasses; ++c) {
            if (hasWarp(view.readyMask[c], w)) {
                out[cursor[c]++] = w;
                break;
            }
        }
    }
}

void
GatesScheduler::notifyIssue(WarpId warp, UnitClass uc)
{
    (void)warp;
    (void)uc;
}

} // namespace wg
