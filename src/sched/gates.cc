#include "gates.hh"

#include "common/logging.hh"

namespace wg {

GatesScheduler::GatesScheduler(const GatesConfig& config) : config_(config)
{
}

void
GatesScheduler::switchPriority(Cycle now)
{
    hi_ = hi_ == UnitClass::Int ? UnitClass::Fp : UnitClass::Int;
    last_switch_ = now;
    ++switches_;
    if (trace_)
        trace_->record(now, trace::EventKind::PrioritySwitch,
                       static_cast<std::uint8_t>(hi_));
}

std::array<UnitClass, kNumUnitClasses>
GatesScheduler::classOrder() const
{
    // [HI, LDST, SFU, LO]; LDST outranks SFU (longer memory latency).
    UnitClass lo = hi_ == UnitClass::Int ? UnitClass::Fp : UnitClass::Int;
    return {hi_, UnitClass::Ldst, UnitClass::Sfu, lo};
}

void
GatesScheduler::beginCycle(Cycle now, const SchedView& view)
{
    auto actv_of = [&](UnitClass uc) {
        return view.actv[static_cast<std::size_t>(uc)];
    };
    UnitClass lo = hi_ == UnitClass::Int ? UnitClass::Fp : UnitClass::Int;

    // Dynamic switching on a drained HI active subset (Section 4.1).
    if (actv_of(hi_) == 0 && actv_of(lo) > 0) {
        switchPriority(now);
        return;
    }

    // Coordinated Blackout extension: if both clusters of the HI type
    // are gated, issuing HI is impossible — flip so LO drains instead
    // (Section 5, last paragraph of Coordinated Blackout).
    if (config_.switchOnBlackout) {
        const auto& hi_gated = hi_ == UnitClass::Int ? view.intBlackout
                                                     : view.fpBlackout;
        if (hi_gated[0] && hi_gated[1] && actv_of(lo) > 0) {
            switchPriority(now);
            return;
        }
    }

    // Optional fairness bound.
    if (config_.maxPriorityHold > 0 &&
        now - last_switch_ >= config_.maxPriorityHold && actv_of(lo) > 0) {
        switchPriority(now);
    }
}

Cycle
GatesScheduler::nextEventCycle(Cycle now, const SchedView& view) const
{
    auto actv_of = [&](UnitClass uc) {
        return view.actv[static_cast<std::size_t>(uc)];
    };
    UnitClass lo = hi_ == UnitClass::Int ? UnitClass::Fp : UnitClass::Int;

    if (actv_of(hi_) == 0 && actv_of(lo) > 0)
        return now; // drain rule fires this cycle

    if (config_.switchOnBlackout) {
        const auto& hi_gated = hi_ == UnitClass::Int ? view.intBlackout
                                                     : view.fpBlackout;
        if (hi_gated[0] && hi_gated[1] && actv_of(lo) > 0) {
            const auto& lo_gated = hi_ == UnitClass::Int
                                       ? view.fpBlackout
                                       : view.intBlackout;
            // Both types fully gated with active warps on each side:
            // the swap re-fires every cycle — a uniform flip-flop the
            // fastForward loop replays exactly, not a horizon event.
            if (lo_gated[0] && lo_gated[1] && actv_of(hi_) > 0)
                return kNeverCycle;
            return now;
        }
    }

    if (config_.maxPriorityHold > 0 && actv_of(lo) > 0) {
        Cycle forced = last_switch_ + config_.maxPriorityHold;
        return forced < now ? now : forced;
    }
    return kNeverCycle;
}

void
GatesScheduler::fastForward(Cycle from, Cycle n, const SchedView& view)
{
    // Under a constant view, a cycle that does not switch proves no
    // later cycle in the span can (the fairness hold is a horizon
    // event), so one quiet iteration ends the replay. The blackout
    // flip-flop regime switches every iteration and runs the full
    // span, emitting its PrioritySwitch events in cycle order.
    for (Cycle i = 0; i < n; ++i) {
        const std::uint64_t before = switches_;
        beginCycle(from + i, view);
        if (switches_ == before)
            return;
    }
}

void
GatesScheduler::order(const std::vector<WarpId>& active,
                      const std::vector<UnitClass>& head_type,
                      std::vector<std::size_t>& out)
{
    if (active.size() != head_type.size())
        panic("GatesScheduler::order: array size mismatch");
    out.clear();
    out.resize(active.size());
    // Stable partition by class priority, preserving the
    // least-recently-issued order the SM maintains within each class.
    // Single pass: count per class, prefix-sum into per-class write
    // cursors, then place each index — identical output to four scans.
    const std::array<UnitClass, kNumUnitClasses> prio = classOrder();
    std::array<std::size_t, kNumUnitClasses> count = {};
    for (UnitClass uc : head_type)
        ++count[static_cast<std::size_t>(uc)];
    std::array<std::size_t, kNumUnitClasses> cursor = {};
    std::size_t base = 0;
    for (UnitClass uc : prio) {
        cursor[static_cast<std::size_t>(uc)] = base;
        base += count[static_cast<std::size_t>(uc)];
    }
    for (std::size_t i = 0; i < head_type.size(); ++i)
        out[cursor[static_cast<std::size_t>(head_type[i])]++] = i;
}

void
GatesScheduler::notifyIssue(WarpId warp, UnitClass uc)
{
    (void)warp;
    (void)uc;
}

} // namespace wg
