#include "gates.hh"

#include "common/logging.hh"

namespace wg {

GatesScheduler::GatesScheduler(const GatesConfig& config) : config_(config)
{
}

void
GatesScheduler::switchPriority(Cycle now)
{
    hi_ = hi_ == UnitClass::Int ? UnitClass::Fp : UnitClass::Int;
    last_switch_ = now;
    ++switches_;
    if (trace_)
        trace_->record(now, trace::EventKind::PrioritySwitch,
                       static_cast<std::uint8_t>(hi_));
}

std::array<UnitClass, kNumUnitClasses>
GatesScheduler::classOrder() const
{
    // [HI, LDST, SFU, LO]; LDST outranks SFU (longer memory latency).
    UnitClass lo = hi_ == UnitClass::Int ? UnitClass::Fp : UnitClass::Int;
    return {hi_, UnitClass::Ldst, UnitClass::Sfu, lo};
}

void
GatesScheduler::beginCycle(Cycle now, const SchedView& view)
{
    auto actv_of = [&](UnitClass uc) {
        return view.actv[static_cast<std::size_t>(uc)];
    };
    UnitClass lo = hi_ == UnitClass::Int ? UnitClass::Fp : UnitClass::Int;

    // Dynamic switching on a drained HI active subset (Section 4.1).
    if (actv_of(hi_) == 0 && actv_of(lo) > 0) {
        switchPriority(now);
        return;
    }

    // Coordinated Blackout extension: if both clusters of the HI type
    // are gated, issuing HI is impossible — flip so LO drains instead
    // (Section 5, last paragraph of Coordinated Blackout).
    if (config_.switchOnBlackout) {
        const auto& hi_gated = hi_ == UnitClass::Int ? view.intBlackout
                                                     : view.fpBlackout;
        if (hi_gated[0] && hi_gated[1] && actv_of(lo) > 0) {
            switchPriority(now);
            return;
        }
    }

    // Optional fairness bound.
    if (config_.maxPriorityHold > 0 &&
        now - last_switch_ >= config_.maxPriorityHold && actv_of(lo) > 0) {
        switchPriority(now);
    }
}

void
GatesScheduler::order(const std::vector<WarpId>& active,
                      const std::vector<UnitClass>& head_type,
                      std::vector<std::size_t>& out)
{
    if (active.size() != head_type.size())
        panic("GatesScheduler::order: array size mismatch");
    out.clear();
    out.reserve(active.size());
    // Stable partition by class priority, preserving the
    // least-recently-issued order the SM maintains within each class.
    for (UnitClass uc : classOrder()) {
        for (std::size_t i = 0; i < active.size(); ++i)
            if (head_type[i] == uc)
                out.push_back(i);
    }
}

void
GatesScheduler::notifyIssue(WarpId warp, UnitClass uc)
{
    (void)warp;
    (void)uc;
}

} // namespace wg
