#include "gto.hh"

#include <algorithm>
#include <numeric>

namespace wg {

void
GtoScheduler::beginCycle(Cycle now, const SchedView& view)
{
    (void)view;
    now_ = now;
}

void
GtoScheduler::order(const std::vector<WarpId>& active,
                    const std::vector<UnitClass>& head_type,
                    std::vector<std::size_t>& out)
{
    (void)head_type;
    out.resize(active.size());
    std::iota(out.begin(), out.end(), std::size_t{0});

    // Oldest-first: sort candidate indices by warp id.
    std::sort(out.begin(), out.end(), [&](std::size_t a, std::size_t b) {
        return active[a] < active[b];
    });

    // Greedy: hoist the last-issued warp to the front if still active.
    auto it = std::find_if(out.begin(), out.end(), [&](std::size_t i) {
        return active[i] == greedy_warp_;
    });
    if (it != out.end())
        std::rotate(out.begin(), it, it + 1);
}

void
GtoScheduler::notifyIssue(WarpId warp, UnitClass uc)
{
    if (trace_ && warp != greedy_warp_)
        trace_->record(now_, trace::EventKind::GreedySwitch,
                       static_cast<std::uint8_t>(uc), trace::kNoCluster, 0,
                       static_cast<std::uint32_t>(warp));
    greedy_warp_ = warp;
    last_class_ = uc;
}

} // namespace wg
