#include "gto.hh"

namespace wg {

void
GtoScheduler::beginCycle(Cycle now, const SchedView& view)
{
    (void)view;
    now_ = now;
}

void
GtoScheduler::order(const SchedView& view, std::vector<WarpId>& out)
{
    out.clear();
    WarpMask ready = view.readyAny();

    // Greedy: the last-issued warp leads while it stays ready. The
    // guard also covers the never-issued sentinel (~WarpId(0)) and
    // notifyIssue calls with out-of-range ids from synthetic tests.
    if (greedy_warp_ < kMaxWarpsPerSm && hasWarp(ready, greedy_warp_)) {
        out.push_back(greedy_warp_);
        ready &= ~warpBit(greedy_warp_);
    }

    // Oldest-first: ascending warp id is exactly ascending bit order,
    // so the sort collapses to a firstHot rotation.
    while (ready != 0) {
        out.push_back(firstHotIndex(ready));
        ready = dropFirstHot(ready);
    }
}

void
GtoScheduler::notifyIssue(WarpId warp, UnitClass uc)
{
    if (trace_ && warp != greedy_warp_)
        trace_->record(now_, trace::EventKind::GreedySwitch,
                       static_cast<std::uint8_t>(uc), trace::kNoCluster, 0,
                       static_cast<std::uint32_t>(warp));
    greedy_warp_ = warp;
    last_class_ = uc;
}

} // namespace wg
