#include "config.hh"

namespace wg {

namespace {

void
checkUnit(const char* name, const ExecUnitConfig& unit,
          std::vector<std::string>& errs)
{
    if (unit.latency == 0)
        errs.push_back(std::string("sm.") + name +
                       ".latency must be >= 1 (results cannot appear "
                       "in the issue cycle)");
    if (unit.initiationInterval == 0)
        errs.push_back(std::string("sm.") + name +
                       ".initiationInterval must be >= 1 (a unit "
                       "cannot accept more than one warp per cycle)");
}

} // namespace

std::vector<std::string>
SmConfig::validate() const
{
    std::vector<std::string> errs;
    if (issueWidth == 0)
        errs.push_back("sm.issueWidth must be >= 1 (an SM that issues "
                       "nothing never retires a warp)");
    if (activeSetCapacity == 0)
        errs.push_back("sm.activeSetCapacity must be >= 1 (the "
                       "two-level scheduler needs at least one active "
                       "slot)");
    if (ibufferDepth == 0)
        errs.push_back("sm.ibufferDepth must be >= 1 (warps cannot "
                       "decode into an empty buffer)");
    if (maxCycles == 0)
        errs.push_back("sm.maxCycles must be >= 1 (the safety stop "
                       "would end the run before cycle 0)");
    checkUnit("alu", alu, errs);
    checkUnit("sfu", sfu, errs);
    checkUnit("ldst", ldst, errs);
    if (mem.missLatencyMin > mem.missLatencyMax)
        errs.push_back("sm.mem.missLatencyMin (" +
                       std::to_string(mem.missLatencyMin) +
                       ") exceeds sm.mem.missLatencyMax (" +
                       std::to_string(mem.missLatencyMax) +
                       "); the latency range is inverted");
    if (mem.mshrLimit == 0)
        errs.push_back("sm.mem.mshrLimit must be >= 1 (no MSHRs means "
                       "no miss ever issues, deadlocking long-latency "
                       "warps)");
    if (mem.serviceBatchPeriod == 0)
        errs.push_back("sm.mem.serviceBatchPeriod must be >= 1 (the "
                       "bandwidth proxy needs a non-zero batch period)");
    if (mem.serviceBatchSize == 0)
        errs.push_back("sm.mem.serviceBatchSize must be >= 1 (a batch "
                       "of 0 misses never drains the MSHR pool)");
    for (std::string& e : pg.validate())
        errs.push_back("sm." + std::move(e));
    return errs;
}

std::vector<std::string>
GpuConfig::validate() const
{
    std::vector<std::string> errs;
    if (numSms == 0)
        errs.push_back("numSms must be >= 1 (a GPU with no SMs "
                       "simulates nothing)");
    for (std::string& e : sm.validate())
        errs.push_back(std::move(e));
    return errs;
}

} // namespace wg
