/**
 * @file
 * Raw statistics produced by one SM simulation.
 */

#pragma once

#include <array>
#include <cstdint>

#include "arch/instr.hh"
#include "common/histogram.hh"
#include "common/types.hh"
#include "pg/domain.hh"

namespace wg {

/** Per-gateable-cluster outcome. */
struct ClusterStats
{
    PgDomainStats pg;          ///< state-machine cycle/event counters
    std::uint64_t issues = 0;  ///< warp instructions executed
    Histogram idleHist{64};    ///< idle-period-length distribution

    void
    merge(const ClusterStats& other)
    {
        pg.merge(other.pg);
        issues += other.issues;
        idleHist.merge(other.idleHist);
    }
};

/** Everything one SM run produces. */
struct SmStats
{
    Cycle cycles = 0;               ///< simulated cycles
    bool completed = false;         ///< all warps drained (vs maxCycles)

    std::array<std::uint64_t, kNumUnitClasses> issuedByClass = {};
    std::uint64_t issuedTotal = 0;

    /** [type][cluster]; type 0 = INT, 1 = FP. */
    std::array<std::array<ClusterStats, 2>, 2> clusters;

    /** SFU gating-extension stats (all-idle counters when disabled). */
    ClusterStats sfuCluster;

    std::uint64_t sfuIssues = 0;
    std::uint64_t ldstIssues = 0;
    std::uint64_t sfuBusyCycles = 0;
    std::uint64_t ldstBusyCycles = 0;

    // Active-warps-set occupancy (Fig. 5b).
    std::uint64_t activeSizeAccum = 0; ///< sum over cycles
    std::uint32_t activeSizeMax = 0;

    std::uint64_t prioritySwitches = 0;
    std::uint64_t wakeupRequests = 0;  ///< issue-blocked-on-gated events

    // Memory system.
    std::uint64_t memHits = 0;
    std::uint64_t memMisses = 0;
    std::uint64_t memStores = 0;
    std::uint64_t mshrRejects = 0;

    // Adaptive idle detect outcomes.
    std::array<Cycle, 2> finalIdleDetect = {0, 0}; ///< [INT, FP]
    std::array<std::uint64_t, 2> adaptIncrements = {0, 0};
    std::array<std::uint64_t, 2> adaptDecrements = {0, 0};

    /** Mean active-set size over the run. */
    double
    avgActiveWarps() const
    {
        if (cycles == 0)
            return 0.0;
        return static_cast<double>(activeSizeAccum) /
               static_cast<double>(cycles);
    }
};

} // namespace wg

