#include "gpu.hh"

#include <future>

#include "common/logging.hh"
#include "workload/generator.hh"

namespace wg {

Gpu::Gpu(const GpuConfig& config) : config_(config)
{
    if (config_.numSms == 0)
        fatal("GpuConfig: numSms must be positive");
}

SimResult
Gpu::run(const BenchmarkProfile& profile) const
{
    ProgramGenerator gen(config_.seed);
    std::vector<std::vector<Program>> per_sm;
    per_sm.reserve(config_.numSms);
    for (unsigned s = 0; s < config_.numSms; ++s)
        per_sm.push_back(gen.generateSm(profile, s));
    return runPrograms(per_sm);
}

SimResult
Gpu::runPrograms(const std::vector<std::vector<Program>>& per_sm) const
{
    if (per_sm.empty())
        fatal("Gpu::runPrograms: no SM workloads");

    auto run_sm = [&](unsigned s) {
        Sm sm(config_.sm, per_sm[s],
              config_.seed * 7919ULL + s * 104729ULL + 1ULL);
        return sm.run();
    };

    std::vector<SmStats> stats(per_sm.size());
    if (per_sm.size() == 1) {
        stats[0] = run_sm(0);
    } else {
        std::vector<std::future<SmStats>> futures;
        futures.reserve(per_sm.size());
        for (unsigned s = 0; s < per_sm.size(); ++s) {
            futures.push_back(std::async(
                std::launch::async,
                [&run_sm, s]() { return run_sm(s); }));
        }
        for (unsigned s = 0; s < per_sm.size(); ++s)
            stats[s] = futures[s].get();
    }
    return aggregate(std::move(stats));
}

SimResult
Gpu::aggregate(std::vector<SmStats> stats) const
{
    SimResult result;
    result.config = config_;
    result.aggregate.completed = true;
    for (unsigned t = 0; t < 2; ++t)
        for (unsigned c = 0; c < 2; ++c)
            result.aggregate.clusters[t][c].idleHist = Histogram(64);

    for (const SmStats& s : stats) {
        result.smCycles.push_back(s.cycles);
        if (s.cycles > result.cycles)
            result.cycles = s.cycles;
        result.totalSmCycles += s.cycles;
        mergeSmStats(result.aggregate, s);
    }

    // Per-type idle histograms: both clusters of both types, all SMs.
    result.intIdleHist = result.aggregate.clusters[0][0].idleHist;
    result.intIdleHist.merge(result.aggregate.clusters[0][1].idleHist);
    result.fpIdleHist = result.aggregate.clusters[1][0].idleHist;
    result.fpIdleHist.merge(result.aggregate.clusters[1][1].idleHist);

    computeEnergy(result);
    return result;
}

} // namespace wg
