#include "gpu.hh"

#include <future>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/threadpool.hh"
#include "workload/generator.hh"

namespace wg {

trace::Meta
makeTraceMeta(const GpuConfig& config, unsigned num_sms)
{
    const PgParams& pg = config.sm.pg;
    trace::Meta meta;
    meta.policy = pgPolicyName(pg.policy);
    meta.scheduler = schedulerPolicyName(config.sm.scheduler);
    meta.numSms = num_sms;
    meta.idleDetect = pg.idleDetect;
    meta.breakEven = pg.breakEven;
    meta.wakeupDelay = pg.wakeupDelay;
    meta.adaptive = pg.adaptiveIdleDetect;
    meta.idleDetectMin = pg.idleDetectMin;
    meta.idleDetectMax = pg.idleDetectMax;
    meta.epochLength = pg.epochLength;
    meta.criticalThreshold = pg.criticalThreshold;
    meta.decrementEpochs = pg.decrementEpochs;
    meta.gateSfu = pg.gateSfu;
    return meta;
}

Gpu::Gpu(const GpuConfig& config) : config_(config)
{
    if (config_.numSms == 0)
        fatal("GpuConfig: numSms must be positive");
}

std::uint64_t
Gpu::smSeed(std::uint64_t seed, unsigned sm)
{
    return streamSeed(seed, sm);
}

SimResult
Gpu::run(const BenchmarkProfile& profile, ThreadPool* pool,
         trace::Collector* collector, metrics::Collector* metrics) const
{
    ProgramGenerator gen(config_.seed);
    std::vector<std::vector<Program>> per_sm;
    {
        metrics::PhaseTimers::Scope timer(
            metrics ? &metrics->profile : nullptr, "workloadGen");
        per_sm.reserve(config_.numSms);
        for (unsigned s = 0; s < config_.numSms; ++s)
            per_sm.push_back(gen.generateSm(profile, s));
    }
    return runPrograms(per_sm, pool, collector, metrics);
}

SimResult
Gpu::runPrograms(const std::vector<std::vector<Program>>& per_sm,
                 ThreadPool* pool, trace::Collector* collector,
                 metrics::Collector* metrics) const
{
    if (per_sm.empty())
        fatal("Gpu::runPrograms: no SM workloads");

    // Pre-create every per-SM recorder/sampler before any job is
    // dispatched: each SM then touches only its own ring buffer and
    // sampler, so the pooled and serial paths emit bit-identical
    // traces and metrics.
    if (collector) {
        collector->prepare(static_cast<unsigned>(per_sm.size()));
        collector->meta =
            makeTraceMeta(config_, static_cast<unsigned>(per_sm.size()));
    }
    if (metrics)
        metrics->prepare(static_cast<unsigned>(per_sm.size()),
                         config_.sm.pg.epochLength);

    auto run_sm = [&](unsigned s) {
        Sm sm(config_.sm, per_sm[s], smSeed(config_.seed, s),
              collector ? collector->recorder(s) : nullptr,
              metrics ? metrics->sampler(s) : nullptr);
        return sm.run();
    };

    // Stats land in `stats[s]` regardless of execution order and are
    // aggregated in SM index order, so the pooled and serial paths are
    // bit-identical.
    std::vector<SmStats> stats(per_sm.size());
    {
        metrics::PhaseTimers::Scope timer(
            metrics ? &metrics->profile : nullptr, "simLoop");
        if (pool == nullptr || per_sm.size() == 1) {
            for (unsigned s = 0; s < per_sm.size(); ++s)
                stats[s] = run_sm(s);
        } else {
            std::vector<std::future<SmStats>> futures;
            futures.reserve(per_sm.size());
            for (unsigned s = 0; s < per_sm.size(); ++s)
                futures.push_back(
                    pool->submit([&run_sm, s] { return run_sm(s); }));
            for (unsigned s = 0; s < per_sm.size(); ++s)
                stats[s] = pool->wait(futures[s]);
        }
    }
    return aggregate(std::move(stats), metrics);
}

SimResult
Gpu::aggregate(std::vector<SmStats> stats,
               metrics::Collector* metrics) const
{
    SimResult result;
    result.config = config_;
    result.aggregate.completed = true;
    for (unsigned t = 0; t < 2; ++t)
        for (unsigned c = 0; c < 2; ++c)
            result.aggregate.clusters[t][c].idleHist = Histogram(64);

    for (const SmStats& s : stats) {
        result.smCycles.push_back(s.cycles);
        if (s.cycles > result.cycles)
            result.cycles = s.cycles;
        result.totalSmCycles += s.cycles;
        mergeSmStats(result.aggregate, s);
    }

    // Per-type idle histograms: both clusters of both types, all SMs.
    result.intIdleHist = result.aggregate.clusters[0][0].idleHist;
    result.intIdleHist.merge(result.aggregate.clusters[0][1].idleHist);
    result.fpIdleHist = result.aggregate.clusters[1][0].idleHist;
    result.fpIdleHist.merge(result.aggregate.clusters[1][1].idleHist);

    {
        metrics::PhaseTimers::Scope timer(
            metrics ? &metrics->profile : nullptr, "energyModel");
        computeEnergy(result);
    }
    return result;
}

} // namespace wg
