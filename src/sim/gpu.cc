#include "gpu.hh"

#include "common/logging.hh"
#include "common/rng.hh"
#include "sim/session.hh"

namespace wg {

trace::Meta
makeTraceMeta(const GpuConfig& config, unsigned num_sms)
{
    const PgParams& pg = config.sm.pg;
    trace::Meta meta;
    meta.policy = pgPolicyName(pg.policy);
    meta.scheduler = schedulerPolicyName(config.sm.scheduler);
    meta.numSms = num_sms;
    meta.idleDetect = pg.idleDetect;
    meta.breakEven = pg.breakEven;
    meta.wakeupDelay = pg.wakeupDelay;
    meta.adaptive = pg.adaptiveIdleDetect;
    meta.idleDetectMin = pg.idleDetectMin;
    meta.idleDetectMax = pg.idleDetectMax;
    meta.epochLength = pg.epochLength;
    meta.criticalThreshold = pg.criticalThreshold;
    meta.decrementEpochs = pg.decrementEpochs;
    meta.gateSfu = pg.gateSfu;
    return meta;
}

Gpu::Gpu(const GpuConfig& config) : config_(config)
{
    if (config_.numSms == 0)
        fatal("GpuConfig: numSms must be positive");
}

std::uint64_t
Gpu::smSeed(std::uint64_t seed, unsigned sm)
{
    return streamSeed(seed, sm);
}

SimResult
Gpu::run(const BenchmarkProfile& profile, ThreadPool* pool,
         trace::Collector* collector, metrics::Collector* metrics) const
{
    SimSession session =
        SimSession::open(profile, config_, pool, collector, metrics);
    return session.result();
}

SimResult
Gpu::runPrograms(const std::vector<std::vector<Program>>& per_sm,
                 ThreadPool* pool, trace::Collector* collector,
                 metrics::Collector* metrics) const
{
    SimSession session = SimSession::openPrograms(per_sm, config_, pool,
                                                  collector, metrics);
    return session.result();
}

} // namespace wg
