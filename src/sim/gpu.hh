/**
 * @file
 * Multi-SM GPU driver. SMs are independent in this study (the paper
 * gates per-SM execution units and all inter-SM interaction is folded
 * into the memory-latency model), so each SM simulates on its own
 * thread and results are merged deterministically in SM order.
 */

#ifndef WG_SIM_GPU_HH
#define WG_SIM_GPU_HH

#include <vector>

#include "sim/result.hh"
#include "sim/sm.hh"
#include "workload/profile.hh"

namespace wg {

/** A GTX480-like GPU: numSms independent SMs. */
class Gpu
{
  public:
    explicit Gpu(const GpuConfig& config);

    /**
     * Run @p profile on every SM (per-SM program variants are derived
     * from the experiment seed) and aggregate.
     */
    SimResult run(const BenchmarkProfile& profile) const;

    /**
     * Run explicit per-SM workloads; perSm.size() overrides numSms.
     */
    SimResult runPrograms(
        const std::vector<std::vector<Program>>& per_sm) const;

    const GpuConfig& config() const { return config_; }

  private:
    SimResult aggregate(std::vector<SmStats> stats) const;

    GpuConfig config_;
};

} // namespace wg

#endif // WG_SIM_GPU_HH
