/**
 * @file
 * Multi-SM GPU driver. SMs are independent in this study (the paper
 * gates per-SM execution units and all inter-SM interaction is folded
 * into the memory-latency model), so per-SM simulations run as jobs on
 * the shared thread pool and results are merged deterministically in
 * SM order — the pooled and serial paths produce bit-identical
 * SimResults.
 */

#pragma once

#include <vector>

#include "common/threadpool.hh"
#include "metrics/sampler.hh"
#include "sim/result.hh"
#include "sim/sm.hh"
#include "trace/recorder.hh"
#include "workload/profile.hh"

namespace wg {

/** Trace metadata describing a GPU configuration (for trace sinks). */
trace::Meta makeTraceMeta(const GpuConfig& config, unsigned num_sms);

/**
 * A GTX480-like GPU: numSms independent SMs. run()/runPrograms() are
 * thin wrappers over SimSession (sim/session.hh), the resumable
 * checkpoint/restore API — an uninterrupted Gpu::run is the degenerate
 * single-segment session.
 */
class Gpu
{
  public:
    explicit Gpu(const GpuConfig& config);

    /**
     * Run @p profile on every SM (per-SM program variants are derived
     * from the experiment seed) and aggregate. Per-SM jobs go to
     * @p pool (nullptr = run serially on the calling thread; the
     * result is bit-identical either way). When @p collector is given,
     * every SM records its event trace into the collector's per-SM
     * ring buffers (pre-created before dispatch, so the pooled and
     * serial traces are also bit-identical). When @p metrics is given,
     * every SM samples its counters into the collector's per-SM epoch
     * samplers under the same pre-create-before-dispatch contract, and
     * the driver fills the collector's wall-clock phase timers.
     */
    SimResult run(const BenchmarkProfile& profile,
                  ThreadPool* pool = &ThreadPool::global(),
                  trace::Collector* collector = nullptr,
                  metrics::Collector* metrics = nullptr) const;

    /**
     * Run explicit per-SM workloads; perSm.size() overrides numSms.
     */
    SimResult runPrograms(const std::vector<std::vector<Program>>& per_sm,
                          ThreadPool* pool = &ThreadPool::global(),
                          trace::Collector* collector = nullptr,
                          metrics::Collector* metrics = nullptr) const;

    /**
     * RNG seed of SM @p sm under experiment seed @p seed: a
     * SplitMix64-mixed stream so nearby (seed, sm) pairs are
     * decorrelated. Exposed for the regression test.
     */
    static std::uint64_t smSeed(std::uint64_t seed, unsigned sm);

    const GpuConfig& config() const { return config_; }

  private:
    GpuConfig config_;
};

} // namespace wg

