/**
 * @file
 * Streaming-multiprocessor model.
 *
 * The SM wires together the fetch/decode stage (per-warp instruction
 * buffers), the scoreboard, the two-level active/pending warp sets, the
 * warp scheduler (baseline two-level or GATES), the execution clusters
 * (2x INT, 2x FP, SFU, LD/ST), the memory system, and the power-gating
 * controller. One call to step() advances one core-clock cycle.
 *
 * Cycle phasing:
 *   1. writeback  - retire unit pipelines and memory returns; clear
 *                   scoreboard entries; un-block pending warps
 *   2. promote    - refill the active set from waiting warps (LRU fill)
 *   3. fetch      - top up each warp's instruction buffer
 *   4. demote     - active warps blocked on long-latency producers move
 *                   to the pending set; drained warps retire
 *   5. schedule   - build the SchedView, let the scheduler order
 *                   candidates, issue up to issueWidth instructions
 *   6. pg tick    - advance the power-gating state machines with this
 *                   cycle's busy indications
 *
 * The hot path is bitmask/SoA based (DESIGN.md §14): warp state lives
 * in a WarpSet (parallel arrays + residency/fetchable/drained masks),
 * and the SM maintains two derived mask families incrementally instead
 * of re-probing every warp every cycle:
 *
 *   readyByClass_[c]  bit w set iff warp w's head exists, is class c,
 *                     and is scoreboard-ready (residency-independent;
 *                     the view ANDs with the active mask)
 *   blockedLongMask_  bit w set iff warp w's head exists and is blocked
 *                     by a long-latency producer (drives demotion and
 *                     pending-set release)
 *
 * plus actvAgg_, the incremental form of the paper's ACTV counters
 * (decoded i-buffer instructions per class over the active set). The
 * masks change only at events — issue, completion writeback, a fetch
 * that fills an empty buffer — each of which calls refreshWarp() for
 * the one warp it touched.
 */

#pragma once

#include <array>
#include <memory>
#include <vector>

#include "common/rng.hh"
#include "exec/unit.hh"
#include "mem/memsys.hh"
#include "metrics/sampler.hh"
#include "pg/controller.hh"
#include "sched/bitmask.hh"
#include "sched/scheduler.hh"
#include "sched/scoreboard.hh"
#include "sched/warp.hh"
#include "sim/config.hh"
#include "sim/smstats.hh"
#include "sim/snapshot.hh"
#include "trace/recorder.hh"

namespace wg {

/** One streaming multiprocessor. */
class Sm
{
  public:
    /**
     * @param config microarchitecture configuration
     * @param programs one program per resident warp (at most
     *        kMaxWarpsPerSm — the warp bitmasks are one 64-bit word)
     * @param seed per-SM seed (memory-latency stream)
     * @param trace event recorder, or null for tracing off (the
     *        disabled path is a single branch per would-be event)
     * @param sampler epoch metrics sampler, or null for metrics off
     *        (the disabled path is one branch per cycle)
     */
    Sm(const SmConfig& config, std::vector<Program> programs,
       std::uint64_t seed, trace::Recorder* trace = nullptr,
       metrics::EpochSampler* sampler = nullptr);

    /** Advance one cycle. @return true when the SM has drained. */
    bool step();

    /** Run to completion (or maxCycles). @return the statistics. */
    const SmStats& run();

    /**
     * Advance to cycle @p limit (clamped to maxCycles) or completion,
     * whichever comes first, with fast-forward bounded so no span
     * crosses @p limit. Unlike run() this neither warns nor finalizes
     * at maxCycles — the SM stays resumable. Stopping at a cycle an
     * uninterrupted run would have fast-forwarded over is safe: the
     * resumed boundary step replays the quiescent cycle exactly.
     */
    void runUntil(Cycle limit);

    /**
     * Capture complete SM state at a step boundary (between step()
     * calls / runUntil() segments). Restoring the snapshot into an Sm
     * constructed with the same config, programs and seed continues
     * the simulation bit-identically.
     */
    SmSnapshot snapshot() const;

    /**
     * Rebuild mid-run state from @p snap. Must be called on a freshly
     * constructed Sm (same config/programs/seed as the captured one)
     * before any step(). Derived masks and aggregates are recomputed.
     * @return false (with *error set when non-null) when the snapshot
     * is inconsistent with this SM's shape — wrong warp count, invalid
     * residency lists, or an observer section mismatch (the snapshot
     * has a trace/metrics section but this SM has no recorder/sampler
     * attached, or vice versa).
     */
    bool restore(const SmSnapshot& snap, std::string* error = nullptr);

    /** @return true when every warp finished. */
    bool done() const { return done_; }

    /** Current cycle. */
    Cycle now() const { return now_; }

    /** Statistics so far (finalized only after run()/finish()). */
    const SmStats& stats() const { return stats_; }

    /** Finalize statistics (idle-period flush). Idempotent. */
    void finish();

    // --- Introspection for tests and the trace example ---
    const PgController& pg() const { return pg_; }
    const Scheduler& scheduler() const { return *scheduler_; }
    const MemorySystem& memory() const { return mem_; }
    const ExecUnit& intCluster(unsigned i) const { return int_[i]; }
    const ExecUnit& fpCluster(unsigned i) const { return fp_[i]; }
    const ExecUnit& sfuUnit() const { return sfu_; }
    const ExecUnit& ldstUnit() const { return ldst_; }
    const WarpSet& warps() const { return warps_; }
    WarpLoc warpLoc(WarpId w) const { return warps_.loc(w); }
    std::size_t numWarps() const { return warps_.size(); }
    std::size_t activeSetSize() const { return active_.size(); }

    /**
     * Cycles the event-horizon fast-forward skipped (replayed
     * analytically instead of stepped). Diagnostic only — deliberately
     * NOT part of SmStats so metrics and traces stay byte-identical
     * with fast-forward on or off.
     */
    std::uint64_t ffSkippedCycles() const { return ff_skipped_; }

    /** Number of fast-forward spans taken (diagnostic only). */
    std::uint64_t ffSpans() const { return ff_spans_; }

  private:
    void writebackPhase();
    void promotePhase();
    void fetchPhase();
    void demotePhase();
    void buildView(SchedView& view) const;
    void schedulePhase(const SchedView& view);

    /**
     * Recompute warp @p w's bits in readyByClass_ / blockedLongMask_
     * from its cached head regmask. Called only when an event changed
     * the warp's head or its scoreboard word.
     */
    void refreshWarp(WarpId w);

    /**
     * Try to issue @p warp's head instruction. The caller guarantees a
     * ready head (candidates come from the ready masks).
     * @return true on issue.
     */
    bool tryIssue(WarpId warp);

    /** Issue helpers per destination unit kind. */
    bool tryIssueAlu(WarpId warp, const Instruction& instr);
    bool tryIssueSfu(WarpId warp, const Instruction& instr);
    bool tryIssueLdst(WarpId warp, const Instruction& instr);

    /**
     * Post-issue bookkeeping shared by the helpers. Takes the unit
     * class by value — every read of the i-buffer head happens before
     * popHead(), so no reference into popped storage survives it.
     */
    void commitIssue(WarpId warp, UnitClass unit, unsigned cluster);

    /** Record a warp moving between the two-level scheduler's sets. */
    void traceMigrate(WarpId warp, WarpLoc to);

    /**
     * Event-horizon fast-forward (run() only; step() stays exact).
     * After a quiescent step — nothing issued, no ready head, no
     * promotion or fetch possible — every phase is a pure function of
     * time until the next component event. Compute that horizon and
     * jump there, replaying the skipped span into every counter so the
     * result is bit-identical to stepping cycle by cycle.
     */
    void tryFastForward();

    /** Replay @p n quiescent cycles (the span [now_, now_ + n)). */
    void fastForward(Cycle n, const SchedView& view,
                     std::uint64_t reject_attempts);

    /** Snapshot the live cumulative counters for the epoch sampler. */
    metrics::EpochCounters sampleCounters() const;

    SmConfig config_;
    std::vector<Program> programs_;
    WarpSet warps_;
    Scoreboard scoreboard_;
    std::unique_ptr<Scheduler> scheduler_;

    ExecUnit int_[2];
    ExecUnit fp_[2];
    ExecUnit sfu_;
    ExecUnit ldst_;
    MemorySystem mem_;
    PgController pg_;

    /** Active warps in least-recently-issued order (front = LRI). */
    std::vector<WarpId> active_;
    /** Warps eligible to enter the active set, FIFO. */
    std::vector<WarpId> waiting_;
    /** Warps parked on long-latency events (two-level pending set). */
    std::vector<WarpId> pending_;

    /** Ready-head mask per class (see file comment). */
    std::array<WarpMask, kNumUnitClasses> readyByClass_ = {};
    /** Heads blocked by a long-latency producer (see file comment). */
    WarpMask blockedLongMask_ = 0;
    /** Incremental ACTV: buffered instructions per class, active set. */
    std::array<std::uint32_t, kNumUnitClasses> actvAgg_ = {};

    /** Round-robin cluster preference per ALU type (load balancing). */
    std::array<unsigned, 2> rr_cluster_ = {0, 0};

    Cycle now_ = 0;
    /** Current segment's stop cycle: bounds fast-forward horizons so a
     *  runUntil() span never crosses the checkpoint boundary. */
    Cycle run_limit_ = 0;
    bool done_ = false;
    bool finished_stats_ = false;
    std::size_t live_warps_ = 0;

    trace::Recorder* trace_ = nullptr;
    metrics::EpochSampler* sampler_ = nullptr;
    std::uint64_t ldst_idle_run_ = 0; ///< LD/ST idle-period tracker

    std::uint64_t ff_skipped_ = 0; ///< cycles jumped by fast-forward
    std::uint64_t ff_spans_ = 0;   ///< fast-forward spans taken

    /** Warps that issued this cycle (for LRR reordering). */
    std::vector<WarpId> issued_this_cycle_;
    /** View step() built this cycle; reused by tryFastForward. */
    SchedView view_;
    std::vector<Completion> completions_;
    std::vector<WarpId> candidates_;

    SmStats stats_;
};

} // namespace wg
