/**
 * @file
 * Deterministic checkpoint state of a simulation (DESIGN.md §17).
 *
 * An SmSnapshot captures everything a mid-run SM needs to continue
 * bit-identically: warp slots, scoreboard words, scheduler policy
 * state, execution-unit heaps, the memory system (including its RNG
 * stream position), the power-gating state machines, the residency
 * lists in their exact order, the partial SmStats, and — when the run
 * is observed — the epoch-sampler partials and the trace ring.
 *
 * Deliberately NOT captured (recomputed or segment-local):
 *   - the i-buffer rings (re-decoded from the program at restore),
 *   - the derived ready/blocked masks and ACTV aggregates,
 *   - fast-forward span diagnostics (ffSkippedCycles/ffSpans describe
 *     one process's work, not simulation state),
 *   - the workload programs themselves (regenerated from the profile
 *     and seed, which the serialized envelope pins).
 *
 * These are plain structs; the JSON codec lives in src/serve (the sim
 * library cannot depend on the serve layer).
 */

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "exec/unit.hh"
#include "mem/memsys.hh"
#include "metrics/sampler.hh"
#include "pg/controller.hh"
#include "sched/scheduler.hh"
#include "sched/warp.hh"
#include "sim/smstats.hh"
#include "trace/event.hh"

namespace wg {

/** Complete checkpoint state of one SM. */
struct SmSnapshot
{
    Cycle now = 0;                   ///< cycles completed
    bool done = false;               ///< every warp finished
    bool finishedStats = false;      ///< finish() already ran
    std::uint64_t liveWarps = 0;     ///< warps not yet Finished
    std::uint64_t ldstIdleRun = 0;   ///< open LD/ST idle-period length
    std::array<std::uint32_t, 2> rrCluster = {0, 0}; ///< ALU round-robin

    /** Residency lists in their exact (order-significant) order. */
    std::vector<std::uint32_t> active;  ///< LRI order, front = LRI
    std::vector<std::uint32_t> waiting; ///< FIFO
    std::vector<std::uint32_t> pending; ///< FIFO

    std::vector<WarpSlotState> warps;          ///< per-warp slots
    std::vector<std::uint32_t> scoreboard;     ///< pending words
    std::vector<std::uint32_t> scoreboardLong; ///< long-latency words

    SchedulerState scheduler;             ///< policy state
    std::array<ExecUnitState, 2> intUnits; ///< INT clusters
    std::array<ExecUnitState, 2> fpUnits;  ///< FP clusters
    ExecUnitState sfu;
    ExecUnitState ldst;
    MemSystemState mem;
    PgControllerState pg;
    SmStats stats;                        ///< partial (or final) stats

    /** Trace section; present iff the SM had a recorder attached. */
    bool hasTrace = false;
    std::vector<trace::Event> traceEvents; ///< retained, oldest first
    std::uint64_t traceOverwritten = 0;    ///< pre-checkpoint ring loss

    /** Metrics section; present iff the SM had a sampler attached. */
    bool hasSampler = false;
    metrics::SamplerState sampler;
};

/** Checkpoint of a whole-GPU run at one runUntil() boundary. */
struct GpuSnapshot
{
    Cycle cycle = 0;             ///< the runUntil() checkpoint cycle
    std::vector<SmSnapshot> sms; ///< one per SM, SM index order
};

} // namespace wg
