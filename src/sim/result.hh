/**
 * @file
 * Aggregated multi-SM simulation results plus the derived metrics the
 * paper's figures plot.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "power/energymodel.hh"
#include "sim/config.hh"
#include "sim/smstats.hh"

namespace wg {

/** Result of simulating one workload on one GPU configuration. */
struct SimResult
{
    GpuConfig config;

    /** Wall-clock runtime in cycles: the slowest SM (SMs run in
     *  parallel in hardware). */
    Cycle cycles = 0;

    /** Sum of per-SM cycle counts (denominator for per-cluster
     *  utilisation ratios). */
    std::uint64_t totalSmCycles = 0;

    /** Counter totals across SMs (aggregate.cycles == totalSmCycles). */
    SmStats aggregate;

    /** Per-SM runtimes. */
    std::vector<Cycle> smCycles;

    /** Energy ledgers per unit type (summed over SMs and clusters). */
    UnitEnergy intEnergy;
    UnitEnergy fpEnergy;
    UnitEnergy sfuEnergy;
    UnitEnergy ldstEnergy;

    /** Idle-period histograms merged over SMs and clusters, per type. */
    Histogram intIdleHist{64};
    Histogram fpIdleHist{64};

    // ----- derived metrics (paper figures) -----

    /** Energy ledger for Int or Fp. */
    const UnitEnergy& energy(UnitClass uc) const;

    /** Merged idle histogram for Int or Fp. */
    const Histogram& idleHist(UnitClass uc) const;

    /** Aggregated gating stats of both clusters of a type. */
    PgDomainStats typeStats(UnitClass uc) const;

    /**
     * Fraction of cluster-cycles the type's pipelines were idle
     * (Fig. 8a numerator before normalisation).
     */
    double idleFraction(UnitClass uc) const;

    /**
     * (compensated - uncompensated) gated cycles as a fraction of
     * cluster-cycles (Fig. 8b; negative = net-loss-dominated).
     */
    double compensatedNetFraction(UnitClass uc) const;

    /** Wakeup count for the type (Fig. 8c numerator). */
    std::uint64_t wakeups(UnitClass uc) const;

    /** Critical wakeups per 1000 cycles per SM (Fig. 6 x-axis). */
    double criticalWakeupsPer1k(UnitClass uc) const;

    /**
     * Idle-period distribution split into the three Fig. 3 regions for
     * the given idle-detect and break-even parameters:
     * [0] lengths <= idle-detect (wasted),
     * [1] in (idle-detect, idle-detect + BET] (net loss under
     *     conventional gating),
     * [2] longer than idle-detect + BET (net win).
     */
    std::array<double, 3> idleRegions(UnitClass uc, Cycle idle_detect,
                                      Cycle bet) const;

    /** Total average instructions-per-cycle across the GPU. */
    double ipc() const;
};

/**
 * Merge one SM's stats into @p into (counters summed; histograms
 * merged; max-tracking fields maxed).
 */
void mergeSmStats(SmStats& into, const SmStats& sm);

/** Compute the energy ledgers of @p result from its aggregate stats. */
void computeEnergy(SimResult& result);

} // namespace wg

