#include "session.hh"

#include <future>
#include <utility>

#include "common/logging.hh"
#include "common/rng.hh"
#include "sim/gpu.hh"
#include "workload/generator.hh"

namespace wg {

SimSession::SimSession(const GpuConfig& config, ThreadPool* pool,
                       trace::Collector* collector,
                       metrics::Collector* metrics)
    : config_(config), pool_(pool), collector_(collector),
      metrics_(metrics)
{
    if (config_.numSms == 0)
        fatal("SimSession: numSms must be positive");
}

void
SimSession::buildSms(const std::vector<std::vector<Program>>& per_sm)
{
    if (per_sm.empty())
        fatal("SimSession: no SM workloads");

    // Pre-create every per-SM recorder/sampler before any job is
    // dispatched: each SM then touches only its own ring buffer and
    // sampler, so the pooled and serial paths emit bit-identical
    // traces and metrics.
    const unsigned n = static_cast<unsigned>(per_sm.size());
    if (collector_) {
        collector_->prepare(n);
        collector_->meta = makeTraceMeta(config_, n);
    }
    if (metrics_)
        metrics_->prepare(n, config_.sm.pg.epochLength);

    sms_.clear();
    sms_.reserve(n);
    for (unsigned s = 0; s < n; ++s)
        sms_.push_back(std::make_unique<Sm>(
            config_.sm, per_sm[s], streamSeed(config_.seed, s),
            collector_ ? collector_->recorder(s) : nullptr,
            metrics_ ? metrics_->sampler(s) : nullptr));
}

SimSession
SimSession::open(const BenchmarkProfile& profile, const GpuConfig& config,
                 ThreadPool* pool, trace::Collector* collector,
                 metrics::Collector* metrics)
{
    SimSession session(config, pool, collector, metrics);
    ProgramGenerator gen(config.seed);
    std::vector<std::vector<Program>> per_sm;
    {
        metrics::PhaseTimers::Scope timer(
            metrics ? &metrics->profile : nullptr, "workloadGen");
        per_sm.reserve(config.numSms);
        for (unsigned s = 0; s < config.numSms; ++s)
            per_sm.push_back(gen.generateSm(profile, s));
    }
    session.buildSms(per_sm);
    return session;
}

SimSession
SimSession::openPrograms(const std::vector<std::vector<Program>>& per_sm,
                         const GpuConfig& config, ThreadPool* pool,
                         trace::Collector* collector,
                         metrics::Collector* metrics)
{
    SimSession session(config, pool, collector, metrics);
    session.buildSms(per_sm);
    return session;
}

std::unique_ptr<SimSession>
SimSession::restore(const GpuSnapshot& snap,
                    const BenchmarkProfile& profile,
                    const GpuConfig& config, ThreadPool* pool,
                    trace::Collector* collector,
                    metrics::Collector* metrics, std::string* error)
{
    auto fail = [error](std::string what) {
        if (error)
            *error = std::move(what);
        return nullptr;
    };
    if (snap.sms.empty())
        return fail("snapshot has no SM sections");
    if (snap.sms.size() != config.numSms)
        return fail("snapshot SM count does not match the config");

    auto session = std::unique_ptr<SimSession>(new SimSession(
        SimSession::open(profile, config, pool, collector, metrics)));
    for (unsigned s = 0; s < session->numSms(); ++s) {
        std::string sm_error;
        if (!session->sms_[s]->restore(snap.sms[s], &sm_error))
            return fail("sm " + std::to_string(s) + ": " + sm_error);
    }
    return session;
}

template <typename Fn>
void
SimSession::forEachSm(Fn&& fn)
{
    // Work lands per SM index regardless of execution order and each
    // SM owns its recorder/sampler, so pooled and serial execution are
    // bit-identical.
    if (pool_ == nullptr || sms_.size() == 1) {
        for (unsigned s = 0; s < sms_.size(); ++s)
            fn(s);
        return;
    }
    std::vector<std::future<void>> futures;
    futures.reserve(sms_.size());
    for (unsigned s = 0; s < sms_.size(); ++s)
        futures.push_back(pool_->submit([&fn, s] { fn(s); }));
    for (auto& f : futures)
        pool_->wait(f);
}

void
SimSession::runUntil(Cycle cycle)
{
    metrics::PhaseTimers::Scope timer(
        metrics_ ? &metrics_->profile : nullptr, "simLoop");
    forEachSm([this, cycle](unsigned s) { sms_[s]->runUntil(cycle); });
}

GpuSnapshot
SimSession::snapshot() const
{
    GpuSnapshot snap;
    snap.cycle = 0;
    snap.sms.reserve(sms_.size());
    for (const auto& sm : sms_) {
        if (sm->now() > snap.cycle)
            snap.cycle = sm->now();
        snap.sms.push_back(sm->snapshot());
    }
    return snap;
}

SimResult
SimSession::result()
{
    std::vector<SmStats> stats(sms_.size());
    {
        metrics::PhaseTimers::Scope timer(
            metrics_ ? &metrics_->profile : nullptr, "simLoop");
        forEachSm([this, &stats](unsigned s) {
            stats[s] = sms_[s]->run();
        });
    }
    return aggregate(std::move(stats));
}

bool
SimSession::done() const
{
    for (const auto& sm : sms_)
        if (!sm->done())
            return false;
    return true;
}

Cycle
SimSession::maxNow() const
{
    Cycle m = 0;
    for (const auto& sm : sms_)
        if (sm->now() > m)
            m = sm->now();
    return m;
}

SimResult
SimSession::aggregate(std::vector<SmStats> stats)
{
    SimResult result;
    result.config = config_;
    result.aggregate.completed = true;
    for (unsigned t = 0; t < 2; ++t)
        for (unsigned c = 0; c < 2; ++c)
            result.aggregate.clusters[t][c].idleHist = Histogram(64);

    for (const SmStats& s : stats) {
        result.smCycles.push_back(s.cycles);
        if (s.cycles > result.cycles)
            result.cycles = s.cycles;
        result.totalSmCycles += s.cycles;
        mergeSmStats(result.aggregate, s);
    }

    // Per-type idle histograms: both clusters of both types, all SMs.
    result.intIdleHist = result.aggregate.clusters[0][0].idleHist;
    result.intIdleHist.merge(result.aggregate.clusters[0][1].idleHist);
    result.fpIdleHist = result.aggregate.clusters[1][0].idleHist;
    result.fpIdleHist.merge(result.aggregate.clusters[1][1].idleHist);

    {
        metrics::PhaseTimers::Scope timer(
            metrics_ ? &metrics_->profile : nullptr, "energyModel");
        computeEnergy(result);
    }
    return result;
}

} // namespace wg
