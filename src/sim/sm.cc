#include "sm.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sched/gates.hh"
#include "sched/gto.hh"
#include "sched/twolevel.hh"

namespace wg {

const char*
schedulerPolicyName(SchedulerPolicy policy)
{
    switch (policy) {
      case SchedulerPolicy::TwoLevel: return "two-level";
      case SchedulerPolicy::Gates: return "gates";
      case SchedulerPolicy::Gto: return "gto";
    }
    return "?";
}

namespace {

// The trace sinks print WarpMigrate args via a location-name table;
// keep the wire encoding pinned to the enum it mirrors.
static_assert(static_cast<int>(WarpLoc::Active) == 0 &&
                  static_cast<int>(WarpLoc::Pending) == 1 &&
                  static_cast<int>(WarpLoc::Waiting) == 2 &&
                  static_cast<int>(WarpLoc::Finished) == 3,
              "trace sinks assume these WarpLoc values");

std::unique_ptr<Scheduler>
makeScheduler(const SmConfig& config)
{
    switch (config.scheduler) {
      case SchedulerPolicy::TwoLevel:
        return std::make_unique<TwoLevelScheduler>();
      case SchedulerPolicy::Gates:
        return std::make_unique<GatesScheduler>(config.gates);
      case SchedulerPolicy::Gto:
        return std::make_unique<GtoScheduler>();
    }
    panic("unknown scheduler policy");
}

} // namespace

Sm::Sm(const SmConfig& config, std::vector<Program> programs,
       std::uint64_t seed, trace::Recorder* trace,
       metrics::EpochSampler* sampler)
    : config_(config), programs_(std::move(programs)),
      scoreboard_(programs_.size()), scheduler_(makeScheduler(config)),
      int_{ExecUnit(UnitClass::Int, 0, config.alu),
           ExecUnit(UnitClass::Int, 1, config.alu)},
      fp_{ExecUnit(UnitClass::Fp, 0, config.alu),
          ExecUnit(UnitClass::Fp, 1, config.alu)},
      sfu_(UnitClass::Sfu, 0, config.sfu),
      ldst_(UnitClass::Ldst, 0, config.ldst),
      mem_(config.mem, Rng(seed, 0xcafef00dd15ea5e5ULL)),
      pg_(config.pg), trace_(trace), sampler_(sampler)
{
    pg_.setTrace(trace_);
    mem_.setTrace(trace_);
    scheduler_->setTrace(trace_);

    if (programs_.empty())
        fatal("Sm: no warps to run");
    if (programs_.size() > kMaxWarpsPerSm)
        fatal("Sm: ", programs_.size(), " warps exceed the ",
              kMaxWarpsPerSm, "-warp bitmask capacity");
    if (config_.issueWidth == 0)
        fatal("Sm: zero issue width");
    if (config_.activeSetCapacity == 0)
        fatal("Sm: zero active-set capacity");
    if (config_.ibufferDepth == 0)
        fatal("Sm: zero i-buffer depth");

    warps_.init(programs_, config_.ibufferDepth);
    waiting_.reserve(programs_.size());
    for (std::size_t w = 0; w < programs_.size(); ++w)
        waiting_.push_back(static_cast<WarpId>(w));
    live_warps_ = warps_.size();
    active_.reserve(config_.activeSetCapacity);
}

void
Sm::refreshWarp(WarpId w)
{
    const WarpMask bit = warpBit(w);
    for (auto& m : readyByClass_)
        m &= ~bit;
    blockedLongMask_ &= ~bit;
    if (!warps_.hasHead(w))
        return;
    const std::uint32_t rm = warps_.headRegMask(w);
    if (scoreboard_.readyMask(w, rm)) {
        readyByClass_[static_cast<std::size_t>(warps_.headClass(w))] |=
            bit;
    } else if (scoreboard_.blockedOnLongMask(w, rm)) {
        blockedLongMask_ |= bit;
    }
}

void
Sm::writebackPhase()
{
    mem_.tick(now_);

    completions_.clear();
    for (auto& u : int_) {
        u.tick(now_);
        u.drainCompletions(now_, completions_);
    }
    for (auto& u : fp_) {
        u.tick(now_);
        u.drainCompletions(now_, completions_);
    }
    sfu_.tick(now_);
    sfu_.drainCompletions(now_, completions_);
    ldst_.tick(now_);
    ldst_.drainCompletions(now_, completions_);

    for (const auto& c : completions_) {
        warps_.noteComplete(c.warp);
        if (c.dest != kNoReg) {
            scoreboard_.complete(c.warp, c.dest);
            refreshWarp(c.warp);
        }
    }

    // Un-block pending warps whose long-latency producer returned: a
    // pending warp stays parked exactly while its blocked-long bit
    // holds. Word-wide fast path; the vector walk (which preserves the
    // pending FIFO order) runs only when some warp actually unblocked.
    if (!completions_.empty() &&
        (warps_.locMask(WarpLoc::Pending) & ~blockedLongMask_) != 0) {
        std::size_t kept = 0;
        for (std::size_t i = 0; i < pending_.size(); ++i) {
            WarpId w = pending_[i];
            if (hasWarp(blockedLongMask_, w)) {
                pending_[kept++] = w;
            } else {
                warps_.setLoc(w, WarpLoc::Waiting);
                traceMigrate(w, WarpLoc::Waiting);
                waiting_.push_back(w);
            }
        }
        pending_.resize(kept);
    }
}

void
Sm::promotePhase()
{
    std::size_t take = 0;
    while (active_.size() < config_.activeSetCapacity &&
           take < waiting_.size()) {
        WarpId w = waiting_[take++];
        warps_.setLoc(w, WarpLoc::Active);
        traceMigrate(w, WarpLoc::Active);
        active_.push_back(w);
        // The warp's buffered instructions enter the active subset.
        for (std::size_t c = 0; c < kNumUnitClasses; ++c)
            actvAgg_[c] += warps_.bufCount(
                w, static_cast<UnitClass>(c));
    }
    if (take > 0)
        waiting_.erase(waiting_.begin(),
                       waiting_.begin() + static_cast<long>(take));
}

void
Sm::fetchPhase()
{
    // Only warps in the active or pending sets hold i-buffer entries
    // worth refilling; waiting warps are topped up on promotion. The
    // fetchable mask makes the common all-buffers-full cycle two AND
    // gates. Per-warp fetch only touches that warp's own program, so
    // ascending-id mask order is as good as any.
    const WarpMask fa =
        warps_.fetchable() & warps_.locMask(WarpLoc::Active);
    forEachWarp(fa, [&](WarpId w) {
        const bool was_empty = !warps_.hasHead(w);
        warps_.fetch(w, actvAgg_.data());
        if (was_empty)
            refreshWarp(w); // a head appeared
    });
    const WarpMask fp =
        warps_.fetchable() & warps_.locMask(WarpLoc::Pending);
    forEachWarp(fp, [&](WarpId w) {
        const bool was_empty = !warps_.hasHead(w);
        warps_.fetch(w); // pending: not in the ACTV aggregate
        if (was_empty)
            refreshWarp(w);
    });
}

void
Sm::demotePhase()
{
    // A warp leaves the active set only when it drained or its head
    // blocks on a long-latency producer — both are mask bits, so the
    // common nothing-to-demote cycle is one word test.
    const WarpMask move =
        warps_.locMask(WarpLoc::Active) &
        (warps_.drainedMask() | blockedLongMask_);
    if (move == 0)
        return;
    std::size_t kept = 0;
    for (std::size_t i = 0; i < active_.size(); ++i) {
        WarpId w = active_[i];
        if (!hasWarp(move, w)) {
            active_[kept++] = w;
            continue;
        }
        if (warps_.drained(w)) {
            warps_.setLoc(w, WarpLoc::Finished);
            traceMigrate(w, WarpLoc::Finished);
            --live_warps_;
            continue; // drained: empty buffer, nothing to subtract
        }
        // Waiting on a long-latency event: two-level demotion.
        warps_.setLoc(w, WarpLoc::Pending);
        traceMigrate(w, WarpLoc::Pending);
        pending_.push_back(w);
        for (std::size_t c = 0; c < kNumUnitClasses; ++c)
            actvAgg_[c] -= warps_.bufCount(
                w, static_cast<UnitClass>(c));
    }
    active_.resize(kept);
}

void
Sm::buildView(SchedView& view) const
{
    // O(1) in the warp count: the ACTV aggregate and the ready masks
    // are maintained incrementally; the view just snapshots them.
    // ACTV counts decoded instructions in the active subset (the paper
    // increments the counter as instructions enter); RDY counts
    // issuable heads only.
    const WarpMask active_mask = warps_.locMask(WarpLoc::Active);
    view.activeMask = active_mask;
    view.lri = active_.data();
    view.numActive = active_.size();
    view.headClass = warps_.headClassData();
    for (std::size_t c = 0; c < kNumUnitClasses; ++c) {
        view.actv[c] = actvAgg_[c];
        view.readyMask[c] = readyByClass_[c] & active_mask;
        view.rdy[c] = popcount(view.readyMask[c]);
    }
    pg_.fillView(view);
}

bool
Sm::tryIssueAlu(WarpId warp, const Instruction& instr)
{
    UnitClass uc = instr.unit;
    const unsigned t = uc == UnitClass::Int ? 0 : 1;
    ExecUnit* units = t == 0 ? int_ : fp_;

    // The SP0/SP1 clusters of a type form a pool (the paper's
    // Coordinated Blackout relies on the second cluster being able to
    // serve a waiting warp). Selection rotates between the clusters so
    // load balances instead of piling onto cluster 0.
    const unsigned first = rr_cluster_[t];
    for (unsigned k = 0; k < kClustersPerType; ++k) {
        unsigned idx = (first + k) % kClustersPerType;
        if (!pg_.canExecute(uc, idx) || !units[idx].canAccept(now_))
            continue;
        units[idx].issue(now_, now_ + config_.alu.latency, warp,
                         instr.dest, false);
        rr_cluster_[t] = (idx + 1) % kClustersPerType;
        commitIssue(warp, uc, idx);
        return true;
    }

    // Nothing could take the instruction: every cluster is gated,
    // waking, or port-busy. Demand-driven wakeup: signal the gating
    // controller so a gated cluster starts (or, under blackout, is
    // woken the moment its break-even time expires). This also covers
    // the port-busy case — a second ready instruction of the type is
    // the hardware's signal that one powered cluster is not enough.
    int target = pg_.pickWakeupTarget(uc);
    if (target >= 0) {
        pg_.requestWakeup(uc, static_cast<unsigned>(target), now_);
        ++stats_.wakeupRequests;
    }
    return false;
}

bool
Sm::tryIssueSfu(WarpId warp, const Instruction& instr)
{
    if (!pg_.canExecute(UnitClass::Sfu, 0)) {
        // SFU gating extension: wake the block on demand.
        if (pg_.isGated(UnitClass::Sfu, 0)) {
            pg_.requestWakeup(UnitClass::Sfu, 0, now_);
            ++stats_.wakeupRequests;
        }
        return false;
    }
    if (!sfu_.canAccept(now_))
        return false;
    sfu_.issue(now_, now_ + config_.sfu.latency, warp, instr.dest, false);
    commitIssue(warp, UnitClass::Sfu, 0);
    return true;
}

bool
Sm::tryIssueLdst(WarpId warp, const Instruction& instr)
{
    if (!ldst_.canAccept(now_))
        return false;
    if (!instr.isStore && !mem_.canAccept(instr.mem)) {
        mem_.noteReject(now_);
        return false;
    }
    Cycle complete = mem_.access(now_, instr.mem, instr.isStore);
    ldst_.issue(now_, complete, warp, instr.dest, instr.isLongLatency());
    commitIssue(warp, UnitClass::Ldst, 0);
    return true;
}

void
Sm::commitIssue(WarpId warp, UnitClass unit, unsigned cluster)
{
    const auto uidx = static_cast<std::size_t>(unit);
    if (trace_)
        trace_->record(now_, trace::EventKind::Issue,
                       static_cast<std::uint8_t>(uidx),
                       static_cast<std::uint8_t>(cluster), 0,
                       static_cast<std::uint32_t>(warp));
    scoreboard_.markIssued(warp, warps_.head(warp));
    warps_.noteIssue(warp);
    --actvAgg_[uidx]; // the head leaves the active subset
    warps_.popHead(warp);
    refreshWarp(warp); // new head (or none) + new scoreboard word
    ++stats_.issuedByClass[uidx];
    ++stats_.issuedTotal;
}

metrics::EpochCounters
Sm::sampleCounters() const
{
    metrics::EpochCounters c;
    c.issued = stats_.issuedTotal;
    for (unsigned t = 0; t < 2; ++t) {
        UnitClass uc = t == 0 ? UnitClass::Int : UnitClass::Fp;
        std::uint64_t busy = 0, gated = 0, comp = 0, events = 0;
        std::uint64_t wakeups = 0, critical = 0;
        for (unsigned k = 0; k < kClustersPerType; ++k) {
            const PgDomainStats& d = pg_.domain(uc, k).stats();
            busy += d.busyCycles;
            gated += d.uncompCycles + d.compCycles;
            comp += d.compCycles;
            events += d.gatingEvents;
            wakeups += d.wakeups;
            critical += d.criticalWakeups;
        }
        if (t == 0) {
            c.intBusyCycles = busy;
            c.intGatedCycles = gated;
            c.intCompCycles = comp;
            c.intGatingEvents = events;
            c.intWakeups = wakeups;
            c.intCriticalWakeups = critical;
            c.intIdleDetect = pg_.idleDetectValue(uc);
        } else {
            c.fpBusyCycles = busy;
            c.fpGatedCycles = gated;
            c.fpCompCycles = comp;
            c.fpGatingEvents = events;
            c.fpWakeups = wakeups;
            c.fpCriticalWakeups = critical;
            c.fpIdleDetect = pg_.idleDetectValue(uc);
        }
    }
    c.memMisses = mem_.misses();
    c.mshrRejects = mem_.mshrRejects();
    c.wakeupRequests = stats_.wakeupRequests;
    c.activeAccum = stats_.activeSizeAccum;
    return c;
}

void
Sm::traceMigrate(WarpId warp, WarpLoc to)
{
    if (trace_)
        trace_->record(now_, trace::EventKind::WarpMigrate, trace::kNoUnit,
                       trace::kNoCluster, static_cast<std::uint8_t>(to),
                       static_cast<std::uint32_t>(warp));
}

bool
Sm::tryIssue(WarpId warp)
{
    // Candidates come from the per-class ready masks, so the head
    // exists and is scoreboard-ready by construction — no re-probe.
    const Instruction& instr = warps_.head(warp);
    switch (instr.unit) {
      case UnitClass::Int:
      case UnitClass::Fp:
        return tryIssueAlu(warp, instr);
      case UnitClass::Sfu:
        return tryIssueSfu(warp, instr);
      case UnitClass::Ldst:
        return tryIssueLdst(warp, instr);
    }
    return false;
}

void
Sm::schedulePhase(const SchedView& view)
{
    scheduler_->beginCycle(now_, view);

    candidates_.clear();
    scheduler_->order(view, candidates_);

    // The SM's two schedulers each own one warp-parity class and issue
    // at most one instruction per cycle (issueWidth = 2 overall). The
    // candidate ordering is shared (GATES keeps one priority state for
    // the SM); the parity restriction models the per-scheduler warp
    // partitioning. Each ready warp appears exactly once in the
    // candidate list, so one warp can never issue twice per cycle.
    issued_this_cycle_.clear();
    WarpMask issued_mask = 0;
    unsigned issued = 0;
    std::array<bool, 2> parity_used = {false, false};
    const bool split = config_.issueWidth == 2;
    for (WarpId w : candidates_) {
        if (issued >= config_.issueWidth)
            break;
        if (split && parity_used[w & 1u])
            continue;
        // Capture the class before tryIssue pops the head.
        const UnitClass uc = warps_.headClass(w);
        if (tryIssue(w)) {
            ++issued;
            parity_used[w & 1u] = true;
            issued_mask |= warpBit(w);
            issued_this_cycle_.push_back(w);
            scheduler_->notifyIssue(w, uc);
        }
    }

    // Least-recently-issued maintenance: issued warps go to the back,
    // both groups keeping their relative order (what a stable partition
    // would produce, in one pass — at most issueWidth warps move).
    if (issued_mask != 0) {
        std::array<WarpId, kMaxWarpsPerSm> moved;
        std::size_t n_moved = 0;
        std::size_t kept = 0;
        for (std::size_t i = 0; i < active_.size(); ++i) {
            if (hasWarp(issued_mask, active_[i]))
                moved[n_moved++] = active_[i];
            else
                active_[kept++] = active_[i];
        }
        for (std::size_t i = 0; i < n_moved; ++i)
            active_[kept++] = moved[i];
    }
}

bool
Sm::step()
{
    if (done_)
        return true;

    writebackPhase();
    promotePhase();
    fetchPhase();
    demotePhase();

    stats_.activeSizeAccum += active_.size();
    if (active_.size() > stats_.activeSizeMax)
        stats_.activeSizeMax = static_cast<std::uint32_t>(active_.size());

    view_ = SchedView{};
    buildView(view_);
    schedulePhase(view_);

    // LD/ST idle-period tracking for the trace (the unit is never
    // gated, so the PG domains don't observe it). Mirrors PgDomain's
    // idle-run semantics: UnitIdle opens a run, UnitBusy closes it with
    // the run length.
    if (trace_) {
        if (ldst_.busy()) {
            if (ldst_idle_run_ > 0) {
                trace_->record(
                    now_, trace::EventKind::UnitBusy,
                    static_cast<std::uint8_t>(UnitClass::Ldst), 0, 0,
                    static_cast<std::uint32_t>(ldst_idle_run_));
                ldst_idle_run_ = 0;
            }
        } else if (++ldst_idle_run_ == 1) {
            trace_->record(now_, trace::EventKind::UnitIdle,
                           static_cast<std::uint8_t>(UnitClass::Ldst), 0);
        }
    }

    const std::array<bool, kClustersPerType> int_busy = {int_[0].busy(),
                                                         int_[1].busy()};
    const std::array<bool, kClustersPerType> fp_busy = {fp_[0].busy(),
                                                        fp_[1].busy()};
    pg_.tick(now_, int_busy, fp_busy, view_, sfu_.busy());

    if (sfu_.busy())
        ++stats_.sfuBusyCycles;
    if (ldst_.busy())
        ++stats_.ldstBusyCycles;

    // Epoch boundary: same (now+1) % epochLength arithmetic the
    // adaptive idle-detect rollover in PgController::tick uses, so the
    // time-series aligns with AdaptiveIdleDetect epoch updates.
    if (sampler_ && (now_ + 1) % sampler_->epochLength() == 0)
        sampler_->sample(now_ + 1, sampleCounters());

    ++now_;

    if (live_warps_ == 0) {
        done_ = true;
        finish();
    }
    return done_;
}

void
Sm::tryFastForward()
{
    // Quiescence test, cheapest condition first. A cycle that issued
    // nothing, saw only provably-failing issue attempts, and can
    // neither promote nor fetch leaves every phase a no-op until some
    // component event fires.
    if (!issued_this_cycle_.empty())
        return;
    if (active_.size() < config_.activeSetCapacity && !waiting_.empty())
        return;

    // Component event horizon: the earliest cycle at which any
    // component's state can change on its own. Every cycle strictly
    // before it replays this cycle's phases verbatim. Heap-top events
    // (pipelines, memory) are the common span limiter, so compute them
    // first and bail before the costlier analysis when the next event
    // is already due.
    Cycle h = run_limit_;
    auto clamp = [&h](Cycle e) {
        if (e < h)
            h = e;
    };
    for (const auto& u : int_)
        clamp(u.nextEventCycle());
    for (const auto& u : fp_)
        clamp(u.nextEventCycle());
    clamp(sfu_.nextEventCycle());
    // An LD/ST occupancy retire only flips a busy flag that feeds the
    // ldstBusyCycles counter (no PG domain, not a pg.tick input), and
    // fastForward replays that piecewise from busyUntil(). Untraced,
    // only its completions bound the horizon; traced runs keep the
    // full event so the UnitIdle/UnitBusy records stay cycle-exact.
    if (trace_)
        clamp(ldst_.nextEventCycle());
    else
        clamp(ldst_.nextCompletionCycle());
    clamp(mem_.nextEventCycle());
    if (h <= now_)
        return;

    // Fetch is a no-op at every step boundary (fetchPhase tops up
    // fully); checked defensively so a future phasing change degrades
    // to "no fast-forward" instead of silent divergence.
    if ((warps_.fetchable() & (warps_.locMask(WarpLoc::Active) |
                               warps_.locMask(WarpLoc::Pending))) != 0)
        return;

    // Reuse the view step() built: in a zero-issue cycle its actv/rdy
    // counts are still exact (no head popped, no writeback since).
    // Only the gating flags can be stale — the boundary pg.tick ran
    // after schedulePhase — so refresh just those.
    SchedView& view = view_;
    pg_.fillView(view);

    // Ready heads do not disqualify a span by themselves: a cycle whose
    // every issue attempt provably fails with no side effects is as
    // dead as a fully idle one (ports mid-initiation-interval, clusters
    // gated with no wakeup candidate, MSHR pool full). Prove that per
    // class, mirroring tryIssue*'s exact decision order; any attempt
    // that would issue — or fire a wakeup request — ends the analysis.
    // MSHR-rejected LD/ST attempts are the one replayable side effect:
    // count them per cycle so fastForward can reproduce the tally.
    for (unsigned t = 0; t < 2; ++t) {
        const UnitClass uc = t == 0 ? UnitClass::Int : UnitClass::Fp;
        if (view.rdy[static_cast<std::size_t>(uc)] == 0)
            continue;
        const ExecUnit* units = t == 0 ? int_ : fp_;
        for (unsigned k = 0; k < kClustersPerType; ++k) {
            if (!pg_.canExecute(uc, k))
                continue; // gated/waking: covered by the pg horizon
            if (units[k].canAccept(now_))
                return; // the attempt would issue
            clamp(units[k].portFreeCycle());
        }
        if (pg_.pickWakeupTarget(uc) >= 0)
            return; // attempts fire wakeup requests every cycle
    }
    if (view.rdy[static_cast<std::size_t>(UnitClass::Sfu)] != 0) {
        if (pg_.canExecute(UnitClass::Sfu, 0)) {
            if (sfu_.canAccept(now_))
                return; // the attempt would issue
            clamp(sfu_.portFreeCycle());
        } else if (pg_.isGated(UnitClass::Sfu, 0)) {
            return; // attempts fire wakeup requests every cycle
        } // else waking: wake completion is a pg horizon event
    }
    std::uint64_t reject_attempts = 0;
    if (view.rdy[static_cast<std::size_t>(UnitClass::Ldst)] != 0) {
        if (!ldst_.canAccept(now_)) {
            clamp(ldst_.portFreeCycle());
        } else {
            // Every ready LD/ST head is a bit in the class mask; the
            // would-issue test is an any-exists and the reject tally a
            // count, so ascending bit order is equivalent to the issue
            // loop's candidate order here.
            WarpMask m = view.readyMask[
                static_cast<std::size_t>(UnitClass::Ldst)];
            while (m != 0) {
                const WarpId w = firstHotIndex(m);
                m = dropFirstHot(m);
                const Instruction& head = warps_.head(w);
                if (head.isStore || mem_.canAccept(head.mem))
                    return; // the attempt would issue
                ++reject_attempts;
            }
            // A traced run emits one MshrReject event per attempt per
            // cycle, interleaved with scheduler replay events; not
            // reproducible from here, so step those spans instead.
            if (trace_ && reject_attempts > 0)
                return;
        }
    }

    const std::array<bool, kClustersPerType> int_busy = {int_[0].busy(),
                                                         int_[1].busy()};
    const std::array<bool, kClustersPerType> fp_busy = {fp_[0].busy(),
                                                        fp_[1].busy()};
    clamp(pg_.nextEventCycle(now_, int_busy, fp_busy, view, sfu_.busy()));
    clamp(scheduler_->nextEventCycle(now_, view));
    // Never skip over an epoch-sampling cycle: the horizon is clamped
    // to the next epoch edge, which then executes as a real step and
    // samples exactly as the cycle-by-cycle path would.
    if (sampler_) {
        const Cycle epoch = sampler_->epochLength();
        clamp((now_ / epoch) * epoch + (epoch - 1));
    }

    if (h <= now_)
        return;
    fastForward(h - now_, view, reject_attempts);
}

void
Sm::fastForward(Cycle n, const SchedView& view,
                std::uint64_t reject_attempts)
{
    // Replay the span [now_, now_ + n) into every counter a real step
    // would have touched. Component order matches step(): scheduler
    // beginCycle precedes pg.tick within a cycle (only GATES in its
    // blackout flip-flop regime emits events here, in cycle order).
    stats_.activeSizeAccum += n * active_.size();
    scheduler_->fastForward(now_, n, view);
    mem_.noteRejects(n * reject_attempts);

    if (trace_ && !ldst_.busy())
        ldst_idle_run_ += n; // run already open from the boundary step

    const std::array<bool, kClustersPerType> int_busy = {int_[0].busy(),
                                                         int_[1].busy()};
    const std::array<bool, kClustersPerType> fp_busy = {fp_[0].busy(),
                                                        fp_[1].busy()};
    pg_.fastForward(now_, n, int_busy, fp_busy, view, sfu_.busy());

    if (sfu_.busy())
        stats_.sfuBusyCycles += n;
    // The span may cross the LD/ST pipeline's busy->idle flip (its
    // occupancy retires are absorbed, not horizon events): count
    // exactly the replayed cycles that precede busyUntil().
    const Cycle ldst_busy_until = ldst_.busyUntil();
    if (ldst_busy_until > now_)
        stats_.ldstBusyCycles += std::min<Cycle>(n, ldst_busy_until - now_);

    now_ += n;
    ff_skipped_ += n;
    ++ff_spans_;
}

void
Sm::runUntil(Cycle limit)
{
    run_limit_ = std::min(limit, config_.maxCycles);
    while (!done_ && now_ < run_limit_) {
        step();
        if (config_.fastForward && !done_ && now_ < run_limit_)
            tryFastForward();
    }
}

const SmStats&
Sm::run()
{
    runUntil(config_.maxCycles);
    if (!done_) {
        warn("Sm: maxCycles (", config_.maxCycles,
             ") reached before the workload drained");
        finish();
    }
    return stats_;
}

void
Sm::finish()
{
    if (finished_stats_)
        return;
    finished_stats_ = true;

    pg_.finalize(now_);
    stats_.cycles = now_;
    stats_.completed = live_warps_ == 0;

    for (unsigned t = 0; t < 2; ++t) {
        UnitClass uc = t == 0 ? UnitClass::Int : UnitClass::Fp;
        const ExecUnit* units = t == 0 ? int_ : fp_;
        for (unsigned c = 0; c < 2; ++c) {
            ClusterStats& cs = stats_.clusters[t][c];
            cs.pg = pg_.domain(uc, c).stats();
            cs.issues = units[c].issueCount();
            cs.idleHist = pg_.domain(uc, c).idleHistogram();
        }
        stats_.finalIdleDetect[t] = pg_.idleDetectValue(uc);
        if (config_.pg.adaptiveIdleDetect) {
            stats_.adaptIncrements[t] = pg_.adaptive(uc).increments();
            stats_.adaptDecrements[t] = pg_.adaptive(uc).decrements();
        }
    }

    stats_.sfuIssues = sfu_.issueCount();
    stats_.sfuCluster.pg = pg_.sfuDomain().stats();
    stats_.sfuCluster.issues = sfu_.issueCount();
    stats_.sfuCluster.idleHist = pg_.sfuDomain().idleHistogram();
    stats_.ldstIssues = ldst_.issueCount();
    stats_.prioritySwitches = scheduler_->prioritySwitches();
    stats_.memHits = mem_.hits();
    stats_.memMisses = mem_.misses();
    stats_.memStores = mem_.stores();
    stats_.mshrRejects = mem_.mshrRejects();

    // Flush the trailing partial epoch so the series covers every
    // simulated cycle (pg_.finalize above closed the idle runs first).
    if (sampler_)
        sampler_->finalize(now_, sampleCounters());
}

SmSnapshot
Sm::snapshot() const
{
    SmSnapshot s;
    s.now = now_;
    s.done = done_;
    s.finishedStats = finished_stats_;
    s.liveWarps = live_warps_;
    s.ldstIdleRun = ldst_idle_run_;
    s.rrCluster = {rr_cluster_[0], rr_cluster_[1]};
    s.active.assign(active_.begin(), active_.end());
    s.waiting.assign(waiting_.begin(), waiting_.end());
    s.pending.assign(pending_.begin(), pending_.end());
    s.warps.reserve(warps_.size());
    s.scoreboard.reserve(warps_.size());
    s.scoreboardLong.reserve(warps_.size());
    for (std::size_t w = 0; w < warps_.size(); ++w) {
        const WarpId id = static_cast<WarpId>(w);
        s.warps.push_back(warps_.saveWarp(id));
        s.scoreboard.push_back(scoreboard_.pendingWord(id));
        s.scoreboardLong.push_back(scoreboard_.pendingLongWord(id));
    }
    scheduler_->saveState(s.scheduler);
    for (unsigned c = 0; c < 2; ++c) {
        s.intUnits[c] = int_[c].saveState();
        s.fpUnits[c] = fp_[c].saveState();
    }
    s.sfu = sfu_.saveState();
    s.ldst = ldst_.saveState();
    s.mem = mem_.saveState();
    s.pg = pg_.saveState();
    s.stats = stats_;
    if (trace_) {
        s.hasTrace = true;
        s.traceEvents = trace_->events();
        s.traceOverwritten = trace_->overwritten();
    }
    if (sampler_) {
        s.hasSampler = true;
        s.sampler = sampler_->saveState();
    }
    return s;
}

bool
Sm::restore(const SmSnapshot& snap, std::string* error)
{
    auto fail = [error](const char* what) {
        if (error)
            *error = what;
        return false;
    };

    const std::size_t n = warps_.size();
    if (snap.warps.size() != n || snap.scoreboard.size() != n ||
        snap.scoreboardLong.size() != n)
        return fail("snapshot warp count does not match the workload");
    if (snap.rrCluster[0] >= kClustersPerType ||
        snap.rrCluster[1] >= kClustersPerType)
        return fail("snapshot rrCluster out of range");
    if (snap.scheduler.hiClass >= kNumUnitClasses)
        return fail("snapshot scheduler class out of range");
    for (unsigned t = 0; t < 2; ++t)
        for (unsigned c = 0; c < kClustersPerType; ++c)
            if (snap.pg.domains[t][c].state > 3)
                return fail("snapshot pg state out of range");
    if (snap.pg.sfuDomain.state > 3)
        return fail("snapshot pg state out of range");

    // Residency lists must tile the non-finished warps: every listed
    // warp's slot must claim the matching location, exactly once.
    std::size_t finished = 0;
    for (std::size_t w = 0; w < n; ++w)
        if (snap.warps[w].loc ==
            static_cast<std::uint8_t>(WarpLoc::Finished))
            ++finished;
    if (snap.liveWarps != n - finished)
        return fail("snapshot liveWarps inconsistent with warp slots");
    std::vector<bool> seen(n, false);
    auto check_list = [&](const std::vector<std::uint32_t>& list,
                          WarpLoc loc) {
        for (std::uint32_t w : list) {
            if (w >= n || seen[w] ||
                snap.warps[w].loc != static_cast<std::uint8_t>(loc))
                return false;
            seen[w] = true;
        }
        return true;
    };
    if (!check_list(snap.active, WarpLoc::Active) ||
        !check_list(snap.waiting, WarpLoc::Waiting) ||
        !check_list(snap.pending, WarpLoc::Pending))
        return fail("snapshot residency lists inconsistent");
    if (snap.active.size() + snap.waiting.size() + snap.pending.size() !=
        n - finished)
        return fail("snapshot residency lists inconsistent");
    if (snap.active.size() > config_.activeSetCapacity)
        return fail("snapshot active set exceeds capacity");

    if (snap.hasTrace != (trace_ != nullptr))
        return fail(snap.hasTrace
                        ? "snapshot carries a trace section but no "
                          "recorder is attached"
                        : "a recorder is attached but the snapshot has "
                          "no trace section");
    if (snap.hasTrace && trace_ &&
        snap.traceEvents.size() > trace_->capacity())
        return fail("snapshot trace section exceeds the ring "
                    "capacity");
    if (snap.hasSampler != (sampler_ != nullptr))
        return fail(snap.hasSampler
                        ? "snapshot carries a metrics section but no "
                          "sampler is attached"
                        : "a sampler is attached but the snapshot has "
                          "no metrics section");
    if (snap.hasSampler &&
        snap.sampler.epochLength != sampler_->epochLength())
        return fail("snapshot metrics epoch length does not match");

    if (!warps_.restore(snap.warps))
        return fail("snapshot warp slots inconsistent with programs");

    now_ = snap.now;
    done_ = snap.done;
    finished_stats_ = snap.finishedStats;
    live_warps_ = snap.liveWarps;
    ldst_idle_run_ = snap.ldstIdleRun;
    rr_cluster_ = {snap.rrCluster[0], snap.rrCluster[1]};
    active_.assign(snap.active.begin(), snap.active.end());
    waiting_.assign(snap.waiting.begin(), snap.waiting.end());
    pending_.assign(snap.pending.begin(), snap.pending.end());
    for (std::size_t w = 0; w < n; ++w)
        scoreboard_.restoreWords(static_cast<WarpId>(w),
                                 snap.scoreboard[w],
                                 snap.scoreboardLong[w]);
    scheduler_->restoreState(snap.scheduler);
    for (unsigned c = 0; c < 2; ++c) {
        int_[c].restoreState(snap.intUnits[c]);
        fp_[c].restoreState(snap.fpUnits[c]);
    }
    sfu_.restoreState(snap.sfu);
    ldst_.restoreState(snap.ldst);
    mem_.restoreState(snap.mem);
    pg_.restoreState(snap.pg);
    stats_ = snap.stats;
    if (trace_)
        trace_->restore(snap.traceEvents, snap.traceOverwritten);
    if (sampler_)
        sampler_->restoreState(snap.sampler);

    // Re-derive the incremental masks and the ACTV aggregate from the
    // restored warp/scoreboard state.
    readyByClass_ = {};
    blockedLongMask_ = 0;
    for (std::size_t w = 0; w < n; ++w)
        refreshWarp(static_cast<WarpId>(w));
    actvAgg_ = {};
    for (WarpId w : active_)
        for (std::size_t c = 0; c < kNumUnitClasses; ++c)
            actvAgg_[c] +=
                warps_.bufCount(w, static_cast<UnitClass>(c));
    return true;
}

} // namespace wg
