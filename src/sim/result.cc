#include "result.hh"

#include "common/logging.hh"

namespace wg {

const UnitEnergy&
SimResult::energy(UnitClass uc) const
{
    switch (uc) {
      case UnitClass::Int: return intEnergy;
      case UnitClass::Fp: return fpEnergy;
      case UnitClass::Sfu: return sfuEnergy;
      case UnitClass::Ldst: return ldstEnergy;
    }
    panic("SimResult::energy: bad class");
}

const Histogram&
SimResult::idleHist(UnitClass uc) const
{
    switch (uc) {
      case UnitClass::Int: return intIdleHist;
      case UnitClass::Fp: return fpIdleHist;
      default:
        panic("SimResult::idleHist: only INT/FP tracked");
    }
}

PgDomainStats
SimResult::typeStats(UnitClass uc) const
{
    unsigned t = uc == UnitClass::Int ? 0 : 1;
    PgDomainStats out = aggregate.clusters[t][0].pg;
    out.merge(aggregate.clusters[t][1].pg);
    return out;
}

double
SimResult::idleFraction(UnitClass uc) const
{
    if (totalSmCycles == 0)
        return 0.0;
    PgDomainStats s = typeStats(uc);
    double cluster_cycles = 2.0 * static_cast<double>(totalSmCycles);
    return 1.0 - static_cast<double>(s.busyCycles) / cluster_cycles;
}

double
SimResult::compensatedNetFraction(UnitClass uc) const
{
    if (totalSmCycles == 0)
        return 0.0;
    PgDomainStats s = typeStats(uc);
    double cluster_cycles = 2.0 * static_cast<double>(totalSmCycles);
    return (static_cast<double>(s.compCycles) -
            static_cast<double>(s.uncompCycles)) /
           cluster_cycles;
}

std::uint64_t
SimResult::wakeups(UnitClass uc) const
{
    return typeStats(uc).wakeups;
}

double
SimResult::criticalWakeupsPer1k(UnitClass uc) const
{
    if (totalSmCycles == 0)
        return 0.0;
    return 1000.0 * static_cast<double>(typeStats(uc).criticalWakeups) /
           static_cast<double>(totalSmCycles);
}

std::array<double, 3>
SimResult::idleRegions(UnitClass uc, Cycle idle_detect, Cycle bet) const
{
    const Histogram& h = idleHist(uc);
    std::array<double, 3> regions = {0.0, 0.0, 0.0};
    if (h.total() == 0)
        return regions;
    regions[0] = h.fractionBetween(0, idle_detect);
    regions[1] = h.fractionBetween(idle_detect + 1, idle_detect + bet);
    regions[2] = h.fractionAbove(idle_detect + bet);
    return regions;
}

double
SimResult::ipc() const
{
    if (cycles == 0)
        return 0.0;
    return static_cast<double>(aggregate.issuedTotal) /
           static_cast<double>(cycles);
}

void
mergeSmStats(SmStats& into, const SmStats& sm)
{
    into.cycles += sm.cycles;
    into.completed = into.completed && sm.completed;
    for (std::size_t c = 0; c < kNumUnitClasses; ++c)
        into.issuedByClass[c] += sm.issuedByClass[c];
    into.issuedTotal += sm.issuedTotal;
    for (unsigned t = 0; t < 2; ++t)
        for (unsigned c = 0; c < 2; ++c)
            into.clusters[t][c].merge(sm.clusters[t][c]);
    into.sfuCluster.merge(sm.sfuCluster);
    into.sfuIssues += sm.sfuIssues;
    into.ldstIssues += sm.ldstIssues;
    into.sfuBusyCycles += sm.sfuBusyCycles;
    into.ldstBusyCycles += sm.ldstBusyCycles;
    into.activeSizeAccum += sm.activeSizeAccum;
    if (sm.activeSizeMax > into.activeSizeMax)
        into.activeSizeMax = sm.activeSizeMax;
    into.prioritySwitches += sm.prioritySwitches;
    into.wakeupRequests += sm.wakeupRequests;
    into.memHits += sm.memHits;
    into.memMisses += sm.memMisses;
    into.memStores += sm.memStores;
    into.mshrRejects += sm.mshrRejects;
    for (unsigned t = 0; t < 2; ++t) {
        // Report the max final idle-detect across SMs (they adapt
        // independently; the values are typically identical).
        if (sm.finalIdleDetect[t] > into.finalIdleDetect[t])
            into.finalIdleDetect[t] = sm.finalIdleDetect[t];
        into.adaptIncrements[t] += sm.adaptIncrements[t];
        into.adaptDecrements[t] += sm.adaptDecrements[t];
    }
}

void
computeEnergy(SimResult& result)
{
    EnergyModel model(result.config.power);
    const Cycle bet = result.config.sm.pg.breakEven;
    const Cycle cycles = result.totalSmCycles;

    result.intEnergy = UnitEnergy{};
    result.fpEnergy = UnitEnergy{};
    for (unsigned c = 0; c < 2; ++c) {
        const ClusterStats& ic = result.aggregate.clusters[0][c];
        result.intEnergy.add(
            model.cluster(UnitClass::Int, ic.pg, ic.issues, cycles, bet));
        const ClusterStats& fc = result.aggregate.clusters[1][c];
        result.fpEnergy.add(
            model.cluster(UnitClass::Fp, fc.pg, fc.issues, cycles, bet));
    }
    if (result.config.sm.pg.gateSfu) {
        result.sfuEnergy =
            model.cluster(UnitClass::Sfu, result.aggregate.sfuCluster.pg,
                          result.aggregate.sfuIssues, cycles, bet);
    } else {
        result.sfuEnergy = model.alwaysOn(
            UnitClass::Sfu, result.aggregate.sfuIssues, cycles);
    }
    result.ldstEnergy = model.alwaysOn(
        UnitClass::Ldst, result.aggregate.ldstIssues, cycles);
}

} // namespace wg
