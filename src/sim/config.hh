/**
 * @file
 * Simulation configuration: one struct per SM, one for the whole GPU.
 * Defaults model the GTX480 configuration the paper uses (Section 7.1).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exec/unit.hh"
#include "mem/memsys.hh"
#include "pg/params.hh"
#include "power/constants.hh"
#include "sched/gates.hh"

namespace wg {

/** Which warp scheduler the SM uses. */
enum class SchedulerPolicy : std::uint8_t {
    TwoLevel, ///< baseline two-level scheduler (Gebhart et al.)
    Gates,    ///< gating-aware two-level scheduler (the paper)
    Gto,      ///< greedy-then-oldest (GPGPU-Sim default; extra baseline)
};

/** Printable scheduler name. */
const char* schedulerPolicyName(SchedulerPolicy policy);

/** Per-SM microarchitecture configuration. */
struct SmConfig
{
    SchedulerPolicy scheduler = SchedulerPolicy::TwoLevel;
    GatesConfig gates;  ///< GATES tunables (used when scheduler==Gates)
    PgParams pg;        ///< power-gating policy and parameters
    MemConfig mem;      ///< memory-system latencies and MSHRs

    unsigned issueWidth = 2;        ///< warps issued per SM per cycle
    unsigned activeSetCapacity = 32; ///< two-level active-set size
    unsigned ibufferDepth = 2;      ///< decoded entries per warp

    /** INT/FP cluster pipelines: 4-cycle latency, II = 1 (GPGPU-Sim
     *  Fermi defaults quoted in Section 3.1). */
    ExecUnitConfig alu = {4, 1, 0};
    /** SFU: long latency, quarter-rate initiation (4 units). */
    ExecUnitConfig sfu = {20, 8, 0};
    /** LD/ST pipeline: occupancy is the AGU/coalescer time; result
     *  latency comes from the memory system per access. */
    ExecUnitConfig ldst = {4, 1, 4};

    Cycle maxCycles = 4'000'000; ///< safety stop for runaway workloads

    /**
     * Event-horizon fast-forward: when the SM proves no state can
     * change before cycle h, jump the clock there while replaying the
     * skipped span into every counter. Results are bit-identical to
     * the cycle-by-cycle path (gated by tests and wgreport --tol 0);
     * disable only to cross-check (`wgsim --no-fastforward`).
     */
    bool fastForward = true;

    /**
     * Configuration sanity check. @return one actionable message per
     * problem (empty = valid). Includes the nested PgParams and unit
     * checks; wgsim and ExperimentRunner reject invalid configs up
     * front instead of simulating nonsense.
     */
    std::vector<std::string> validate() const;
};

/** Whole-GPU configuration. */
struct GpuConfig
{
    SmConfig sm;
    unsigned numSms = 15;       ///< GTX480 has 15 SMs
    std::uint64_t seed = 1;     ///< experiment seed
    PowerConstants power;       ///< energy-model constants

    /** GPU-level sanity check; includes sm.validate(). */
    std::vector<std::string> validate() const;
};

} // namespace wg

