/**
 * @file
 * Resumable simulation sessions (DESIGN.md §17).
 *
 * A SimSession owns the per-SM simulators of one run and exposes the
 * checkpoint/resume lifecycle:
 *
 *   auto s = SimSession::open(profile, config, ...);
 *   s.runUntil(cycle);               // advance every SM to `cycle`
 *   GpuSnapshot snap = s.snapshot(); // capture, e.g. serialize + exit
 *   ...
 *   auto r = SimSession::restore(snap, profile, config, ..., &err);
 *   SimResult result = r->result(); // finish; bit-identical to an
 *                                   // uninterrupted run
 *
 * Gpu::run()/runPrograms() are thin wrappers over open() + result(),
 * so every pre-existing call site keeps its exact behaviour. The
 * determinism contract: for any checkpoint cycle on an epoch boundary
 * (and in fact any cycle), split-and-resume produces the same
 * SimResult, metrics export, and trace bytes as the uninterrupted run,
 * fast-forward on or off.
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/threadpool.hh"
#include "metrics/sampler.hh"
#include "sim/result.hh"
#include "sim/sm.hh"
#include "sim/snapshot.hh"
#include "trace/recorder.hh"
#include "workload/profile.hh"

namespace wg {

/** One resumable multi-SM simulation. */
class SimSession
{
  public:
    /**
     * Open a fresh session: generate per-SM programs from @p profile
     * (under the config seed) and construct every SM at cycle 0. When
     * @p collector / @p metrics are given they are prepare()d here and
     * every SM records into its own pre-created ring/sampler, exactly
     * as Gpu::run does. @p pool runs per-SM work (nullptr = serial;
     * results are bit-identical either way).
     */
    static SimSession open(const BenchmarkProfile& profile,
                           const GpuConfig& config,
                           ThreadPool* pool = &ThreadPool::global(),
                           trace::Collector* collector = nullptr,
                           metrics::Collector* metrics = nullptr);

    /** Open with explicit per-SM workloads (size overrides numSms). */
    static SimSession
    openPrograms(const std::vector<std::vector<Program>>& per_sm,
                 const GpuConfig& config,
                 ThreadPool* pool = &ThreadPool::global(),
                 trace::Collector* collector = nullptr,
                 metrics::Collector* metrics = nullptr);

    /**
     * Rebuild a session from a snapshot: regenerate the programs from
     * @p profile (they are not captured — the profile/seed pair pins
     * them), construct every SM, and restore its captured state.
     * Observer attachment must match the capture: a snapshot taken
     * with tracing/metrics on must be resumed with a collector of the
     * same shape, and vice versa. @return nullptr (with *error set)
     * when the snapshot does not fit the config/profile/observers.
     */
    static std::unique_ptr<SimSession>
    restore(const GpuSnapshot& snap, const BenchmarkProfile& profile,
            const GpuConfig& config,
            ThreadPool* pool = &ThreadPool::global(),
            trace::Collector* collector = nullptr,
            metrics::Collector* metrics = nullptr,
            std::string* error = nullptr);

    /**
     * Advance every SM to cycle @p cycle (clamped to maxCycles) or
     * completion. Checkpoints are meant to be taken on epoch
     * boundaries (cycle % epochLength == 0) so they align with the
     * adaptive-gating and metrics epoch clock, but any boundary is
     * deterministic.
     */
    void runUntil(Cycle cycle);

    /** Capture every SM's state (call between runUntil segments). */
    GpuSnapshot snapshot() const;

    /**
     * Run to completion (or maxCycles) and aggregate. Idempotent once
     * complete; the SimResult is byte-identical to Gpu::run on the
     * same inputs regardless of how many runUntil segments preceded.
     */
    SimResult result();

    /** @return true when every SM has drained. */
    bool done() const;

    /** Slowest SM's current cycle. */
    Cycle maxNow() const;

    unsigned numSms() const
    {
        return static_cast<unsigned>(sms_.size());
    }

    const GpuConfig& config() const { return config_; }

  private:
    SimSession(const GpuConfig& config, ThreadPool* pool,
               trace::Collector* collector,
               metrics::Collector* metrics);

    /** Prepare collectors and construct the per-SM simulators. */
    void buildSms(const std::vector<std::vector<Program>>& per_sm);

    /** Run fn(s) for every SM, pooled when a pool is attached. */
    template <typename Fn>
    void forEachSm(Fn&& fn);

    SimResult aggregate(std::vector<SmStats> stats);

    GpuConfig config_;
    ThreadPool* pool_;
    trace::Collector* collector_;
    metrics::Collector* metrics_;
    std::vector<std::unique_ptr<Sm>> sms_;
};

} // namespace wg
