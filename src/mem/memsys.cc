#include "memsys.hh"

#include "common/logging.hh"

namespace wg {

MemorySystem::MemorySystem(const MemConfig& config, Rng rng)
    : config_(config), rng_(rng)
{
    if (config_.missLatencyMax < config_.missLatencyMin)
        fatal("MemConfig: missLatencyMax < missLatencyMin");
    if (config_.mshrLimit == 0)
        fatal("MemConfig: mshrLimit must be positive");
}

bool
MemorySystem::canAccept(MemClass mem) const
{
    if (mem == MemClass::Miss)
        return inflight_.size() < config_.mshrLimit;
    return true;
}

Cycle
MemorySystem::access(Cycle now, MemClass mem, bool is_store)
{
    if (mem == MemClass::None)
        panic("MemorySystem::access with MemClass::None");

    if (is_store) {
        // Stores retire through a write buffer: short occupancy and no
        // MSHR pressure in this model.
        ++stores_;
        return now + config_.storeLatency;
    }

    if (mem == MemClass::Hit) {
        ++hits_;
        return now + config_.hitLatency;
    }

    ++misses_;
    // Bandwidth: assign the miss to the first DRAM service batch at or
    // after `now` with free capacity; all misses of one batch complete
    // together.
    const Cycle period = config_.serviceBatchPeriod;
    Cycle round_up = ((now + period - 1) / period) * period;
    if (!batch_valid_ || batch_time_ < round_up) {
        batch_time_ = round_up;
        batch_used_ = 0;
        batch_latency_ = drawMissLatency();
        batch_valid_ = true;
    }
    while (batch_used_ >= config_.serviceBatchSize) {
        batch_time_ += period;
        batch_used_ = 0;
        batch_latency_ = drawMissLatency();
    }
    ++batch_used_;
    Cycle done = batch_time_ + batch_latency_;
    inflight_.push(done);
    if (trace_)
        trace_->record(now, trace::EventKind::MshrFill,
                       static_cast<std::uint8_t>(UnitClass::Ldst),
                       trace::kNoCluster, 0, outstanding());
    return done;
}

Cycle
MemorySystem::drawMissLatency()
{
    Cycle span = config_.missLatencyMax - config_.missLatencyMin + 1;
    return config_.missLatencyMin +
           rng_.nextRange(static_cast<std::uint32_t>(span));
}

void
MemorySystem::tick(Cycle now)
{
    while (!inflight_.empty() && inflight_.top() <= now) {
        inflight_.pop();
        if (trace_)
            trace_->record(now, trace::EventKind::MshrDrain,
                           static_cast<std::uint8_t>(UnitClass::Ldst),
                           trace::kNoCluster, 0, outstanding());
    }
}

MemSystemState
MemorySystem::saveState() const
{
    MemSystemState s;
    s.rng = rng_.saveState();
    s.batchTime = batch_time_;
    s.batchUsed = batch_used_;
    s.batchLatency = batch_latency_;
    s.batchValid = batch_valid_;
    auto heap = inflight_;
    while (!heap.empty()) {
        s.inflight.push_back(heap.top());
        heap.pop();
    }
    s.hits = hits_;
    s.misses = misses_;
    s.stores = stores_;
    s.mshrRejects = mshr_rejects_;
    return s;
}

void
MemorySystem::restoreState(const MemSystemState& s)
{
    rng_.restoreState(s.rng);
    batch_time_ = s.batchTime;
    batch_used_ = s.batchUsed;
    batch_latency_ = s.batchLatency;
    batch_valid_ = s.batchValid;
    inflight_ = {};
    for (Cycle c : s.inflight)
        inflight_.push(c);
    hits_ = s.hits;
    misses_ = s.misses;
    stores_ = s.stores;
    mshr_rejects_ = s.mshrRejects;
}

} // namespace wg
