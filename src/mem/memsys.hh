/**
 * @file
 * Latency/MSHR model of the per-SM memory system.
 *
 * The power-gating study needs the memory system for one thing: to
 * create the long-latency events that move warps between the two-level
 * scheduler's active and pending sets, and to throttle LD/ST issue when
 * too many misses are outstanding. A full cache hierarchy is therefore
 * modelled as (a) a latency distribution per access class and (b) a
 * bounded miss-status-holding-register (MSHR) pool.
 */

#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "arch/instr.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "trace/recorder.hh"

namespace wg {

/** Configuration for the memory model. */
struct MemConfig
{
    Cycle hitLatency = 12;      ///< shared-memory / L1-hit latency
    Cycle missLatencyMin = 300; ///< fastest L2/DRAM round trip
    Cycle missLatencyMax = 600; ///< slowest L2/DRAM round trip
    Cycle storeLatency = 8;     ///< store pipeline occupancy
    unsigned mshrLimit = 32;    ///< max outstanding long-latency misses

    /**
     * DRAM-bandwidth proxy: misses are serviced in batches of
     * serviceBatchSize every serviceBatchPeriod cycles (row-buffer hits
     * and multiple channels return data in clumps, not as a uniform
     * trickle). The ratio fixes average per-SM bandwidth: 4 lines per
     * 64 cycles is roughly GTX480's ~177 GB/s shared across 15 SMs.
     * Misses in one batch complete together (one latency draw per
     * batch), which preserves the bursty wakeup pattern real DRAM
     * produces.
     */
    Cycle serviceBatchPeriod = 96;
    unsigned serviceBatchSize = 4;
};

/**
 * Checkpoint state of the memory system: the RNG stream position, the
 * open service batch, the in-flight miss heap (sorted ascending for
 * canonical bytes) and the lifetime counters.
 */
struct MemSystemState {
    RngState rng;                  ///< latency-draw stream position
    Cycle batchTime = 0;           ///< service time of the filling batch
    std::uint32_t batchUsed = 0;   ///< misses already in that batch
    Cycle batchLatency = 0;        ///< latency draw for that batch
    bool batchValid = false;       ///< a batch has been opened
    std::vector<Cycle> inflight;   ///< outstanding miss completions
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t stores = 0;
    std::uint64_t mshrRejects = 0;
};

/**
 * Per-SM memory system. Accessed by the LD/ST pipeline; tracks
 * outstanding misses and produces per-access latencies.
 */
class MemorySystem
{
  public:
    MemorySystem(const MemConfig& config, Rng rng);

    /**
     * Whether a new access of class @p mem can be accepted this cycle
     * (misses are rejected when the MSHR pool is full).
     */
    bool canAccept(MemClass mem) const;

    /**
     * Start an access; @return its completion cycle.
     * @param now current cycle
     * @param mem access class (must not be MemClass::None)
     * @param is_store stores complete in storeLatency regardless of class
     */
    Cycle access(Cycle now, MemClass mem, bool is_store);

    /** Retire misses whose data returned at or before @p now. */
    void tick(Cycle now);

    /**
     * Cycle of the next in-flight miss return (the next cycle tick()
     * would change MSHR occupancy), or kNeverCycle when nothing is in
     * flight. Used by the event-horizon fast-forward.
     */
    Cycle
    nextEventCycle() const
    {
        return inflight_.empty() ? kNeverCycle : inflight_.top();
    }

    /** @return outstanding long-latency misses. */
    unsigned outstanding() const
    {
        return static_cast<unsigned>(inflight_.size());
    }

    /** Total accesses served, by class (for stats). */
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t stores() const { return stores_; }

    /** Cycles during which at least one MSHR reject happened. */
    std::uint64_t mshrRejects() const { return mshr_rejects_; }

    /** Record an issue attempt rejected for MSHR capacity. */
    void
    noteReject(Cycle now = 0)
    {
        ++mshr_rejects_;
        if (trace_)
            trace_->record(now, trace::EventKind::MshrReject,
                           static_cast<std::uint8_t>(UnitClass::Ldst),
                           trace::kNoCluster, 0, outstanding());
    }

    /**
     * Bulk form of noteReject for fast-forwarded stall spans. Only
     * valid untraced: the per-cycle MshrReject events a traced run
     * emits cannot be reproduced here.
     */
    void noteRejects(std::uint64_t count) { mshr_rejects_ += count; }

    /** Attach a trace recorder (null = tracing off). */
    void setTrace(trace::Recorder* recorder) { trace_ = recorder; }

    /** Capture complete model state for a checkpoint. */
    MemSystemState saveState() const;

    /** Rebuild the model mid-flight from a captured MemSystemState. */
    void restoreState(const MemSystemState& s);

  private:
    /** Draw one DRAM round-trip latency. */
    Cycle drawMissLatency();

    MemConfig config_;
    Rng rng_;
    Cycle batch_time_ = 0;      ///< service time of the filling batch
    unsigned batch_used_ = 0;   ///< misses already in that batch
    Cycle batch_latency_ = 0;   ///< latency draw for that batch
    bool batch_valid_ = false;  ///< a batch has been opened
    // Min-heap of completion cycles of outstanding misses.
    std::priority_queue<Cycle, std::vector<Cycle>, std::greater<Cycle>>
        inflight_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t stores_ = 0;
    std::uint64_t mshr_rejects_ = 0;
    trace::Recorder* trace_ = nullptr;
};

} // namespace wg

