/**
 * @file
 * SM-level power-gating controller: owns the four gateable domains
 * (two INT clusters, two FP clusters), the per-type adaptive idle-detect
 * regulators, and the coordinated-blackout cross-cluster logic.
 */

#pragma once

#include <array>
#include <cstdint>

#include "arch/instr.hh"
#include "pg/adaptive.hh"
#include "pg/domain.hh"
#include "sched/scheduler.hh"

namespace wg {

/** Number of gateable clusters per unit type (SP0/SP1 in GTX480). */
inline constexpr unsigned kClustersPerType = 2;

/**
 * Checkpoint state of the SM's power-gating controller: every domain
 * state machine, the per-type adaptive regulators and the epoch anchor.
 */
struct PgControllerState {
    /** domains[type][cluster]: type 0 = INT, 1 = FP. */
    std::array<std::array<PgDomainState, kClustersPerType>, 2> domains;
    PgDomainState sfuDomain;             ///< SFU gating domain
    std::array<AdaptiveState, 2> adaptive; ///< per-type regulators
    Cycle epochStart = 0;                ///< current epoch's first cycle
};

/**
 * Power-gating controller for one SM. Only INT and FP clusters are
 * gated (the paper gates CUDA cores; SFU/LDST are left always-on).
 */
class PgController
{
  public:
    explicit PgController(const PgParams& params);

    /** @return true when (uc, idx) can execute this cycle. */
    bool canExecute(UnitClass uc, unsigned idx) const;

    /** @return true when (uc, idx) is gated (either blackout state). */
    bool isGated(UnitClass uc, unsigned idx) const;

    /**
     * Select the cluster of @p uc a blocked instruction should send its
     * wakeup request to: a wakeable cluster if any, else the gated
     * cluster closest to compensation.
     * @return cluster index, or -1 when no cluster of @p uc is gated or
     *         waking (i.e. a wakeup makes no sense).
     */
    int pickWakeupTarget(UnitClass uc) const;

    /** Forward a wakeup request to (uc, idx). */
    void requestWakeup(UnitClass uc, unsigned idx, Cycle now);

    /**
     * Advance all domains one cycle. Call after the issue stage.
     * @param now current cycle
     * @param int_busy INT cluster pipeline-occupancy, per cluster
     * @param fp_busy FP cluster pipeline-occupancy, per cluster
     * @param view this cycle's active-subset counters (for coordinated
     *        blackout's ACTV checks)
     * @param sfu_busy SFU pipeline occupancy (used when gateSfu is set)
     */
    void tick(Cycle now, const std::array<bool, kClustersPerType>& int_busy,
              const std::array<bool, kClustersPerType>& fp_busy,
              const SchedView& view, bool sfu_busy = false);

    /**
     * First cycle >= @p now at which any domain's per-cycle behaviour
     * under these (constant) inputs stops being uniform, or at which
     * the adaptive idle-detect epoch rolls over. kNeverCycle when every
     * future tick is uniform. Inputs mirror tick().
     */
    Cycle nextEventCycle(Cycle now,
                         const std::array<bool, kClustersPerType>& int_busy,
                         const std::array<bool, kClustersPerType>& fp_busy,
                         const SchedView& view, bool sfu_busy = false) const;

    /**
     * Replay @p n uniform ticks at once (no state transitions, trace
     * events, or epoch rollovers inside the span — the caller bounds
     * @p n by nextEventCycle). Bit-identical to n tick() calls.
     */
    void fastForward(Cycle now, Cycle n,
                     const std::array<bool, kClustersPerType>& int_busy,
                     const std::array<bool, kClustersPerType>& fp_busy,
                     const SchedView& view, bool sfu_busy = false);

    /** The SFU gating domain (meaningful when params().gateSfu). */
    const PgDomain& sfuDomain() const { return sfu_domain_; }

    /** Flush idle-period trackers at end of simulation. */
    void finalize(Cycle now);

    /** Current effective idle-detect window for a unit type. */
    Cycle idleDetectValue(UnitClass uc) const;

    /** Access a domain's state and statistics. */
    const PgDomain& domain(UnitClass uc, unsigned idx) const;

    /** Adaptive regulator for a type (valid for Int/Fp only). */
    const AdaptiveIdleDetect& adaptive(UnitClass uc) const;

    /** Populate the blackout flags of a SchedView for the scheduler. */
    void fillView(SchedView& view) const;

    /**
     * Attach a trace recorder (null = tracing off) to the controller
     * and all of its domains.
     */
    void setTrace(trace::Recorder* recorder);

    const PgParams& params() const { return params_; }

    /** Capture all domains + regulators for a checkpoint. */
    PgControllerState
    saveState() const
    {
        PgControllerState s;
        for (unsigned t = 0; t < 2; ++t)
            for (unsigned c = 0; c < kClustersPerType; ++c)
                s.domains[t][c] = domains_[t][c].saveState();
        s.sfuDomain = sfu_domain_.saveState();
        for (unsigned t = 0; t < 2; ++t)
            s.adaptive[t] = adaptive_[t].saveState();
        s.epochStart = epoch_start_;
        return s;
    }

    /** Rebuild all domains + regulators from a checkpoint. */
    void
    restoreState(const PgControllerState& s)
    {
        for (unsigned t = 0; t < 2; ++t)
            for (unsigned c = 0; c < kClustersPerType; ++c)
                domains_[t][c].restoreState(s.domains[t][c]);
        sfu_domain_.restoreState(s.sfuDomain);
        for (unsigned t = 0; t < 2; ++t)
            adaptive_[t].restoreState(s.adaptive[t]);
        epoch_start_ = s.epochStart;
    }

  private:
    /** Map Int->0, Fp->1; panics on other classes. */
    static unsigned typeIndex(UnitClass uc);

    PgParams params_;
    // domains_[type][cluster]: type 0 = INT, 1 = FP.
    std::array<std::array<PgDomain, kClustersPerType>, 2> domains_;
    PgDomain sfu_domain_;  ///< conventional gating when gateSfu is set
    std::array<AdaptiveIdleDetect, 2> adaptive_;
    Cycle epoch_start_ = 0;
    trace::Recorder* trace_ = nullptr;
};

} // namespace wg

