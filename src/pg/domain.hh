/**
 * @file
 * Power-gating state machine for one gateable cluster (paper Fig. 2c).
 */

#pragma once

#include <cstdint>

#include "common/histogram.hh"
#include "common/types.hh"
#include "pg/params.hh"
#include "trace/recorder.hh"

namespace wg {

/**
 * Controller state. "On" is the paper's Idle_detect state: the unit is
 * powered and the idle-detect counter is running.
 */
enum class PgState : std::uint8_t { On, Uncompensated, Compensated, Wakeup };

/** Printable state name. */
const char* pgStateName(PgState state);

/** Event and cycle counters exposed by a domain. */
struct PgDomainStats
{
    std::uint64_t busyCycles = 0;      ///< pipeline occupied
    std::uint64_t idleOnCycles = 0;    ///< powered but idle (leaking)
    std::uint64_t uncompCycles = 0;    ///< gated, before break-even
    std::uint64_t compCycles = 0;      ///< gated, past break-even
    std::uint64_t wakeupCycles = 0;    ///< waking (leaking, no work)
    std::uint64_t gatingEvents = 0;    ///< sleep-transistor off events
    std::uint64_t wakeups = 0;         ///< sleep-transistor on events
    std::uint64_t uncompWakeups = 0;   ///< wakeups before break-even
    std::uint64_t criticalWakeups = 0; ///< wakeups at blackout end
    std::uint64_t coordImmediateGates = 0; ///< coordinated fast gates
    std::uint64_t coordGateVetoes = 0; ///< coordinated gating vetoes

    std::uint64_t
    gatedCycles() const
    {
        return uncompCycles + compCycles;
    }

    /**
     * Sum another domain's counters into this one. Every aggregation
     * path (ClusterStats::merge, SimResult::typeStats) delegates here,
     * so a newly added counter only needs to be merged in one place.
     */
    void
    merge(const PgDomainStats& other)
    {
        busyCycles += other.busyCycles;
        idleOnCycles += other.idleOnCycles;
        uncompCycles += other.uncompCycles;
        compCycles += other.compCycles;
        wakeupCycles += other.wakeupCycles;
        gatingEvents += other.gatingEvents;
        wakeups += other.wakeups;
        uncompWakeups += other.uncompWakeups;
        criticalWakeups += other.criticalWakeups;
        coordImmediateGates += other.coordImmediateGates;
        coordGateVetoes += other.coordGateVetoes;
    }
};

/**
 * Checkpoint state of one power-gating domain: the Fig. 2c state
 * machine registers, the in-progress idle run, the lifetime counters
 * and the idle-period histogram.
 */
struct PgDomainState {
    std::uint8_t state = 0;         ///< PgState
    Cycle idleCount = 0;            ///< idle-detect counter (On state)
    Cycle betRemaining = 0;         ///< countdown in gated states
    Cycle wakeupRemaining = 0;      ///< countdown in Wakeup state
    Cycle compensatedAt = kNeverCycle; ///< cycle BET expired
    bool wakeupRequested = false;   ///< request pending for next tick
    std::uint64_t idleRun = 0;      ///< current idle-period length
    std::uint32_t epochCritical = 0; ///< critical wakeups this epoch
    PgDomainStats stats;            ///< lifetime event/cycle counters
    Histogram idleHist;             ///< idle-period-length distribution
};

/**
 * One gateable execution cluster's power-gating controller.
 *
 * Per-cycle protocol (driven by PgController):
 *   1. during issue, the SM calls requestWakeup() when it wants an
 *      instruction to run on a gated/waking cluster;
 *   2. after issue, tick() advances the state machine with this cycle's
 *      busy indication and the effective idle-detect value.
 *
 * The domain also records the unit's idle-period-length histogram
 * (Fig. 3): an idle period is a maximal run of cycles during which the
 * pipeline is empty, regardless of gating state.
 */
class PgDomain
{
  public:
    /**
     * @param params policy parameters (policy None = never gates)
     * @param hist_max largest idle-period bin tracked individually
     */
    explicit PgDomain(const PgParams& params, std::uint64_t hist_max = 64);

    /** @return true when the cluster can execute instructions. */
    bool canExecute() const { return state_ == PgState::On; }

    /** @return true in Uncompensated or Compensated. */
    bool
    isGated() const
    {
        return state_ == PgState::Uncompensated ||
               state_ == PgState::Compensated;
    }

    /**
     * @return true when a wakeup request this cycle would be honoured
     * (used by the SM to pick which cluster of a pair to wake).
     */
    bool wakeable() const;

    /** Scheduler wants this cluster; handled at the next tick(). */
    void requestWakeup(Cycle now);

    /**
     * Advance one cycle.
     * @param now current cycle
     * @param busy pipeline-occupied indication for this cycle
     * @param idle_detect effective idle-detect window (adaptive value)
     * @param coord_peer_gated Coordinated Blackout: the other cluster of
     *        this type is currently gated
     * @param coord_actv warps of this type in the active subset
     */
    void tick(Cycle now, bool busy, Cycle idle_detect,
              bool coord_peer_gated, std::uint32_t coord_actv);

    /**
     * First cycle >= @p now at which tick() under these (constant)
     * inputs would do anything beyond uniform counter increments: a
     * state transition, a trace event, or a per-cycle regime change
     * (e.g. the coordinated-blackout veto counter starting to count).
     * kNeverCycle when every future tick is uniform. Preconditions
     * match tick(): no pending wakeup request, inputs constant.
     */
    Cycle nextEventCycle(Cycle now, bool busy, Cycle idle_detect,
                         bool coord_peer_gated,
                         std::uint32_t coord_actv) const;

    /**
     * Replay @p n uniform ticks at once. The caller guarantees
     * now + n <= nextEventCycle(now, ...) for the same inputs, so no
     * state transition or trace event falls inside the span; only the
     * per-cycle counters advance. Bit-identical to n tick() calls.
     */
    void fastForward(Cycle n, bool busy, Cycle idle_detect,
                     bool coord_peer_gated, std::uint32_t coord_actv);

    /** Flush the in-progress idle period into the histogram. */
    void finalize(Cycle now);

    /**
     * Attach a trace recorder (null = tracing off) and this domain's
     * identity in the event stream.
     */
    void
    setTrace(trace::Recorder* recorder, std::uint8_t unit,
             std::uint8_t cluster)
    {
        trace_ = recorder;
        trace_unit_ = unit;
        trace_cluster_ = cluster;
    }

    PgState state() const { return state_; }

    /** Cycles left until a gated cluster compensates (0 otherwise). */
    Cycle
    betRemaining() const
    {
        return state_ == PgState::Uncompensated ? bet_remaining_ : 0;
    }

    const PgDomainStats& stats() const { return stats_; }
    const Histogram& idleHistogram() const { return idle_hist_; }

    /** Critical wakeups recorded since the last epoch reset. */
    std::uint32_t epochCriticalWakeups() const { return epoch_critical_; }

    /** Reset the per-epoch critical-wakeup counter. */
    void resetEpochCriticalWakeups() { epoch_critical_ = 0; }

    /** Capture the full state machine for a checkpoint. */
    PgDomainState
    saveState() const
    {
        PgDomainState s;
        s.state = static_cast<std::uint8_t>(state_);
        s.idleCount = idle_count_;
        s.betRemaining = bet_remaining_;
        s.wakeupRemaining = wakeup_remaining_;
        s.compensatedAt = compensated_at_;
        s.wakeupRequested = wakeup_requested_;
        s.idleRun = idle_run_;
        s.epochCritical = epoch_critical_;
        s.stats = stats_;
        s.idleHist = idle_hist_;
        return s;
    }

    /** Rebuild the state machine from a captured PgDomainState. */
    void
    restoreState(const PgDomainState& s)
    {
        state_ = static_cast<PgState>(s.state);
        idle_count_ = s.idleCount;
        bet_remaining_ = s.betRemaining;
        wakeup_remaining_ = s.wakeupRemaining;
        compensated_at_ = s.compensatedAt;
        wakeup_requested_ = s.wakeupRequested;
        idle_run_ = s.idleRun;
        epoch_critical_ = s.epochCritical;
        stats_ = s.stats;
        idle_hist_ = s.idleHist;
    }

  private:
    void enterGated(Cycle now, trace::GateReason reason,
                    std::uint32_t actv);
    void beginWakeup(Cycle now, trace::WakeReason reason);

    /** Record a trace event when a recorder is attached. */
    void
    traceEvent(Cycle now, trace::EventKind kind, std::uint8_t arg = 0,
               std::uint32_t value = 0)
    {
        if (trace_)
            trace_->record(now, kind, trace_unit_, trace_cluster_, arg,
                           value);
    }

    PgParams params_;
    PgState state_ = PgState::On;

    Cycle idle_count_ = 0;       ///< idle-detect counter (On state)
    Cycle bet_remaining_ = 0;    ///< countdown in gated states
    Cycle wakeup_remaining_ = 0; ///< countdown in Wakeup state
    Cycle compensated_at_ = kNeverCycle; ///< cycle BET expired
    bool wakeup_requested_ = false;

    std::uint64_t idle_run_ = 0; ///< current idle-period length

    PgDomainStats stats_;
    Histogram idle_hist_;
    std::uint32_t epoch_critical_ = 0;

    trace::Recorder* trace_ = nullptr;
    std::uint8_t trace_unit_ = trace::kNoUnit;
    std::uint8_t trace_cluster_ = trace::kNoCluster;
};

} // namespace wg

