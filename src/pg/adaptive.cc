#include "adaptive.hh"

#include "common/logging.hh"

namespace wg {

AdaptiveIdleDetect::AdaptiveIdleDetect(const PgParams& params)
    : params_(params)
{
    if (params_.idleDetectMin > params_.idleDetectMax)
        fatal("AdaptiveIdleDetect: idleDetectMin > idleDetectMax");
    value_ = params_.idleDetect;
    if (value_ < params_.idleDetectMin)
        value_ = params_.idleDetectMin;
    if (value_ > params_.idleDetectMax)
        value_ = params_.idleDetectMax;
}

void
AdaptiveIdleDetect::endEpoch(std::uint32_t critical_wakeups)
{
    if (critical_wakeups > params_.criticalThreshold) {
        // React quickly: gate more conservatively.
        if (value_ < params_.idleDetectMax) {
            ++value_;
            ++increments_;
        }
        good_epochs_ = 0;
        return;
    }

    // Decrement conservatively: only after a run of quiet epochs.
    ++good_epochs_;
    if (good_epochs_ >= params_.decrementEpochs) {
        if (value_ > params_.idleDetectMin) {
            --value_;
            ++decrements_;
        }
        good_epochs_ = 0;
    }
}

} // namespace wg
