#include "controller.hh"

#include "common/logging.hh"

namespace wg {

namespace {

/** SFU gating parameters: conventional state machine (Section 3). */
PgParams
sfuParams(const PgParams& params)
{
    PgParams p = params;
    p.policy = params.gateSfu ? PgPolicy::Conventional : PgPolicy::None;
    p.adaptiveIdleDetect = false;
    return p;
}

} // namespace

PgController::PgController(const PgParams& params)
    : params_(params),
      domains_{{{PgDomain(params), PgDomain(params)},
                {PgDomain(params), PgDomain(params)}}},
      sfu_domain_(sfuParams(params)),
      adaptive_{AdaptiveIdleDetect(params), AdaptiveIdleDetect(params)}
{
    if (params_.breakEven == 0 && params_.policy != PgPolicy::None)
        warn("PgController: break-even time of 0 makes every gating "
             "event instantly compensated");
}

unsigned
PgController::typeIndex(UnitClass uc)
{
    switch (uc) {
      case UnitClass::Int: return 0;
      case UnitClass::Fp: return 1;
      default:
        panic("PgController: class ", unitClassName(uc), " is not gated");
    }
}

bool
PgController::canExecute(UnitClass uc, unsigned idx) const
{
    if (uc == UnitClass::Sfu)
        return sfu_domain_.canExecute();
    if (uc == UnitClass::Ldst)
        return true; // never gated in this design
    return domains_[typeIndex(uc)][idx].canExecute();
}

bool
PgController::isGated(UnitClass uc, unsigned idx) const
{
    if (uc == UnitClass::Sfu)
        return sfu_domain_.isGated();
    if (uc == UnitClass::Ldst)
        return false;
    return domains_[typeIndex(uc)][idx].isGated();
}

int
PgController::pickWakeupTarget(UnitClass uc) const
{
    if (uc == UnitClass::Sfu)
        return sfu_domain_.isGated() ? 0 : -1;
    if (uc == UnitClass::Ldst)
        return -1;
    const auto& doms = domains_[typeIndex(uc)];

    // Prefer a cluster whose wakeup would be honoured right now.
    for (unsigned i = 0; i < kClustersPerType; ++i)
        if (doms[i].wakeable())
            return static_cast<int>(i);

    // Otherwise target the gated cluster closest to compensation so the
    // pending request is seen the moment its blackout ends.
    int best = -1;
    Cycle best_rem = kNeverCycle;
    for (unsigned i = 0; i < kClustersPerType; ++i) {
        if (!doms[i].isGated())
            continue;
        Cycle rem = doms[i].betRemaining();
        if (rem < best_rem) {
            best_rem = rem;
            best = static_cast<int>(i);
        }
    }
    return best;
}

void
PgController::requestWakeup(UnitClass uc, unsigned idx, Cycle now)
{
    if (uc == UnitClass::Sfu) {
        sfu_domain_.requestWakeup(now);
        return;
    }
    domains_[typeIndex(uc)][idx].requestWakeup(now);
}

void
PgController::tick(Cycle now,
                   const std::array<bool, kClustersPerType>& int_busy,
                   const std::array<bool, kClustersPerType>& fp_busy,
                   const SchedView& view, bool sfu_busy)
{
    sfu_domain_.tick(now, sfu_busy, params_.idleDetect, false, 0);

    // Snapshot gated state before any domain advances so both clusters
    // of a pair observe a consistent "peer gated" view.
    std::array<std::array<bool, kClustersPerType>, 2> gated;
    for (unsigned t = 0; t < 2; ++t)
        for (unsigned c = 0; c < kClustersPerType; ++c)
            gated[t][c] = domains_[t][c].isGated();

    const std::array<std::uint32_t, 2> actv = {
        view.actv[static_cast<std::size_t>(UnitClass::Int)],
        view.actv[static_cast<std::size_t>(UnitClass::Fp)],
    };

    for (unsigned t = 0; t < 2; ++t) {
        Cycle idle_detect = params_.adaptiveIdleDetect
                                ? adaptive_[t].value()
                                : params_.idleDetect;
        const auto& busy = t == 0 ? int_busy : fp_busy;
        for (unsigned c = 0; c < kClustersPerType; ++c) {
            bool peer_gated = gated[t][1 - c];
            domains_[t][c].tick(now, busy[c], idle_detect, peer_gated,
                                actv[t]);
        }
    }

    // Epoch roll-over for adaptive idle detect.
    if (params_.adaptiveIdleDetect &&
        now - epoch_start_ + 1 >= params_.epochLength) {
        for (unsigned t = 0; t < 2; ++t) {
            std::uint32_t criticals = 0;
            for (unsigned c = 0; c < kClustersPerType; ++c) {
                criticals += domains_[t][c].epochCriticalWakeups();
                domains_[t][c].resetEpochCriticalWakeups();
            }
            adaptive_[t].endEpoch(criticals);
            if (trace_)
                trace_->record(
                    now, trace::EventKind::EpochUpdate,
                    static_cast<std::uint8_t>(t == 0 ? UnitClass::Int
                                                     : UnitClass::Fp),
                    trace::kNoCluster,
                    static_cast<std::uint8_t>(
                        criticals > 255 ? 255 : criticals),
                    static_cast<std::uint32_t>(adaptive_[t].value()));
        }
        epoch_start_ = now + 1;
    }
}

Cycle
PgController::nextEventCycle(
    Cycle now, const std::array<bool, kClustersPerType>& int_busy,
    const std::array<bool, kClustersPerType>& fp_busy,
    const SchedView& view, bool sfu_busy) const
{
    Cycle h = sfu_domain_.nextEventCycle(now, sfu_busy,
                                         params_.idleDetect, false, 0);

    const std::array<std::uint32_t, 2> actv = {
        view.actv[static_cast<std::size_t>(UnitClass::Int)],
        view.actv[static_cast<std::size_t>(UnitClass::Fp)],
    };
    for (unsigned t = 0; t < 2; ++t) {
        Cycle idle_detect = params_.adaptiveIdleDetect
                                ? adaptive_[t].value()
                                : params_.idleDetect;
        const auto& busy = t == 0 ? int_busy : fp_busy;
        for (unsigned c = 0; c < kClustersPerType; ++c) {
            bool peer_gated = domains_[t][1 - c].isGated();
            Cycle e = domains_[t][c].nextEventCycle(
                now, busy[c], idle_detect, peer_gated, actv[t]);
            if (e < h)
                h = e;
        }
    }

    if (params_.adaptiveIdleDetect) {
        Cycle edge = epoch_start_ + params_.epochLength - 1;
        if (edge < h)
            h = edge;
    }
    return h;
}

void
PgController::fastForward(
    Cycle now, Cycle n,
    const std::array<bool, kClustersPerType>& int_busy,
    const std::array<bool, kClustersPerType>& fp_busy,
    const SchedView& view, bool sfu_busy)
{
    (void)now;
    sfu_domain_.fastForward(n, sfu_busy, params_.idleDetect, false, 0);

    const std::array<std::uint32_t, 2> actv = {
        view.actv[static_cast<std::size_t>(UnitClass::Int)],
        view.actv[static_cast<std::size_t>(UnitClass::Fp)],
    };
    for (unsigned t = 0; t < 2; ++t) {
        Cycle idle_detect = params_.adaptiveIdleDetect
                                ? adaptive_[t].value()
                                : params_.idleDetect;
        const auto& busy = t == 0 ? int_busy : fp_busy;
        for (unsigned c = 0; c < kClustersPerType; ++c) {
            // The peer snapshot is stable inside a uniform span: every
            // domain transition is itself a horizon event.
            bool peer_gated = domains_[t][1 - c].isGated();
            domains_[t][c].fastForward(n, busy[c], idle_detect,
                                       peer_gated, actv[t]);
        }
    }
    // No epoch rollover inside a span (the edge bounds the horizon).
}

void
PgController::setTrace(trace::Recorder* recorder)
{
    trace_ = recorder;
    for (unsigned t = 0; t < 2; ++t) {
        auto unit = static_cast<std::uint8_t>(t == 0 ? UnitClass::Int
                                                     : UnitClass::Fp);
        for (unsigned c = 0; c < kClustersPerType; ++c)
            domains_[t][c].setTrace(recorder, unit,
                                    static_cast<std::uint8_t>(c));
    }
    sfu_domain_.setTrace(recorder,
                         static_cast<std::uint8_t>(UnitClass::Sfu), 0);
}

void
PgController::finalize(Cycle now)
{
    for (auto& type : domains_)
        for (auto& d : type)
            d.finalize(now);
    sfu_domain_.finalize(now);
}

Cycle
PgController::idleDetectValue(UnitClass uc) const
{
    if (!params_.adaptiveIdleDetect)
        return params_.idleDetect;
    return adaptive_[typeIndex(uc)].value();
}

const PgDomain&
PgController::domain(UnitClass uc, unsigned idx) const
{
    return domains_[typeIndex(uc)][idx];
}

const AdaptiveIdleDetect&
PgController::adaptive(UnitClass uc) const
{
    return adaptive_[typeIndex(uc)];
}

void
PgController::fillView(SchedView& view) const
{
    for (unsigned c = 0; c < kClustersPerType; ++c) {
        view.intBlackout[c] = domains_[0][c].isGated();
        view.fpBlackout[c] = domains_[1][c].isGated();
    }
}

} // namespace wg
