#include "params.hh"

namespace wg {

std::vector<std::string>
PgParams::validate() const
{
    std::vector<std::string> errs;
    // Note: idleDetect 0 is legal — it means "gate on the first idle
    // cycle", a useful aggressive point in the sensitivity sweeps.
    const bool gating = policy != PgPolicy::None || gateSfu;
    if (gating && breakEven == 0)
        errs.push_back("pg.breakEven must be >= 1 when a gating policy "
                       "is active (BET 0 means gating is always "
                       "profitable, which defeats the model)");
    if (gating && wakeupDelay == 0)
        errs.push_back("pg.wakeupDelay must be >= 1 when a gating "
                       "policy is active (instant wakeup removes the "
                       "performance cost the study measures)");
    if (adaptiveIdleDetect) {
        if (epochLength == 0)
            errs.push_back("pg.epochLength must be >= 1 when "
                           "adaptiveIdleDetect is on (0 would divide "
                           "time into empty epochs)");
        if (idleDetectMin > idleDetectMax)
            errs.push_back("pg.idleDetectMin (" +
                           std::to_string(idleDetectMin) +
                           ") exceeds pg.idleDetectMax (" +
                           std::to_string(idleDetectMax) +
                           "); the adaptive bounds are inverted");
        if (decrementEpochs == 0)
            errs.push_back("pg.decrementEpochs must be >= 1 when "
                           "adaptiveIdleDetect is on (0 good epochs "
                           "before a decrement is ill-defined)");
    }
    return errs;
}

} // namespace wg
