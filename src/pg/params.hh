/**
 * @file
 * Power-gating policy selection and parameters (paper Sections 2.2, 5,
 * 5.1 and 7.1).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace wg {

/** Which power-gating controller drives the INT/FP clusters. */
enum class PgPolicy : std::uint8_t {
    None,                ///< no gating (baseline energy accounting only)
    Conventional,        ///< Hu et al. ISLPED'04 state machine
    NaiveBlackout,       ///< blackout: no wakeup before break-even time
    CoordinatedBlackout, ///< blackout + cluster-aware second-unit rule
};

/** Printable policy name. */
const char* pgPolicyName(PgPolicy policy);

/** Parameters of the gating controllers. Paper defaults in §7.1. */
struct PgParams
{
    PgPolicy policy = PgPolicy::None;

    Cycle idleDetect = 5;   ///< idle cycles before gating
    Cycle breakEven = 14;   ///< BET: cycles to recoup E_overhead
    Cycle wakeupDelay = 3;  ///< cycles from wake signal to operational

    /**
     * Extension (paper Section 3): also gate the SFU block. SFU
     * instructions are rare, so the paper argues plain conventional
     * gating suffices there; when enabled the SFU domain always runs
     * the conventional state machine regardless of `policy`.
     */
    bool gateSfu = false;

    // --- Adaptive idle detect (Section 5.1) ---
    bool adaptiveIdleDetect = false;
    Cycle epochLength = 1000;        ///< cycles per adaptation epoch
    std::uint32_t criticalThreshold = 5; ///< critical wakeups per epoch
    Cycle idleDetectMin = 5;         ///< lower bound when adaptive
    Cycle idleDetectMax = 10;        ///< upper bound when adaptive
    std::uint32_t decrementEpochs = 4; ///< good epochs before decrement

    /**
     * Parameter sanity check. @return one actionable message per
     * problem (empty = valid): break-even of 0 under an active policy,
     * inverted adaptive bounds, a zero epoch, and similar nonsense
     * that would otherwise simulate quietly.
     */
    std::vector<std::string> validate() const;
};

} // namespace wg

