/**
 * @file
 * Adaptive idle-detect (paper Section 5.1): per-unit-type runtime
 * adjustment of the idle-detect window from the critical-wakeup rate.
 */

#pragma once

#include <cstdint>

#include "pg/params.hh"

namespace wg {

/**
 * Checkpoint state of one adaptive idle-detect regulator.
 */
struct AdaptiveState {
    Cycle value = 0;              ///< current idle-detect window
    std::uint32_t goodEpochs = 0; ///< consecutive epochs under threshold
    std::uint64_t increments = 0; ///< increments applied (diagnostics)
    std::uint64_t decrements = 0; ///< decrements applied (diagnostics)
};

/**
 * One adaptive idle-detect regulator. Instantiated per unit type (one
 * for INT, one for FP), because each type sees a different instruction
 * mix and reaches its own operating point.
 *
 * Policy: at each epoch end, if the epoch's critical wakeups exceed the
 * threshold, increment idle-detect (gate more conservatively) — react
 * quickly to performance-critical phases. Decrement only after
 * `decrementEpochs` consecutive epochs under the threshold — back off
 * slowly. The value is bounded to [idleDetectMin, idleDetectMax].
 */
class AdaptiveIdleDetect
{
  public:
    explicit AdaptiveIdleDetect(const PgParams& params);

    /** Current idle-detect window. */
    Cycle value() const { return value_; }

    /**
     * Close an epoch.
     * @param critical_wakeups critical wakeups observed this epoch
     *        across both clusters of the unit type
     */
    void endEpoch(std::uint32_t critical_wakeups);

    /** Number of increments applied (diagnostics). */
    std::uint64_t increments() const { return increments_; }

    /** Number of decrements applied (diagnostics). */
    std::uint64_t decrements() const { return decrements_; }

    /** Capture the regulator for a checkpoint. */
    AdaptiveState
    saveState() const
    {
        return AdaptiveState{value_, good_epochs_, increments_,
                             decrements_};
    }

    /** Rebuild the regulator from a captured AdaptiveState. */
    void
    restoreState(const AdaptiveState& s)
    {
        value_ = s.value;
        good_epochs_ = s.goodEpochs;
        increments_ = s.increments;
        decrements_ = s.decrements;
    }

  private:
    PgParams params_;
    Cycle value_;
    std::uint32_t good_epochs_ = 0;
    std::uint64_t increments_ = 0;
    std::uint64_t decrements_ = 0;
};

} // namespace wg

