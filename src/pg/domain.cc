#include "domain.hh"

#include "common/logging.hh"

namespace wg {

const char*
pgPolicyName(PgPolicy policy)
{
    switch (policy) {
      case PgPolicy::None: return "none";
      case PgPolicy::Conventional: return "conventional";
      case PgPolicy::NaiveBlackout: return "naive-blackout";
      case PgPolicy::CoordinatedBlackout: return "coordinated-blackout";
    }
    return "?";
}

const char*
pgStateName(PgState state)
{
    switch (state) {
      case PgState::On: return "on";
      case PgState::Uncompensated: return "uncompensated";
      case PgState::Compensated: return "compensated";
      case PgState::Wakeup: return "wakeup";
    }
    return "?";
}

PgDomain::PgDomain(const PgParams& params, std::uint64_t hist_max)
    : params_(params), idle_hist_(hist_max)
{
}

bool
PgDomain::wakeable() const
{
    switch (state_) {
      case PgState::On:
      case PgState::Wakeup:
        return false;
      case PgState::Uncompensated:
        return params_.policy == PgPolicy::Conventional;
      case PgState::Compensated:
        return true;
    }
    return false;
}

void
PgDomain::requestWakeup(Cycle now)
{
    (void)now;
    wakeup_requested_ = true;
}

void
PgDomain::enterGated(Cycle now, trace::GateReason reason,
                     std::uint32_t actv)
{
    ++stats_.gatingEvents;
    idle_count_ = 0;
    traceEvent(now, trace::EventKind::Gate,
               static_cast<std::uint8_t>(reason), actv);
    if (params_.breakEven == 0) {
        state_ = PgState::Compensated;
        compensated_at_ = now;
        traceEvent(now, trace::EventKind::BetExpire, 0, 0);
    } else {
        state_ = PgState::Uncompensated;
        bet_remaining_ = params_.breakEven;
    }
}

void
PgDomain::beginWakeup(Cycle now, trace::WakeReason reason)
{
    ++stats_.wakeups;
    traceEvent(now, trace::EventKind::Wakeup,
               static_cast<std::uint8_t>(reason));
    if (params_.wakeupDelay == 0) {
        state_ = PgState::On;
        idle_count_ = 0;
        traceEvent(now, trace::EventKind::WakeupDone);
        return;
    }
    state_ = PgState::Wakeup;
    wakeup_remaining_ = params_.wakeupDelay;
}

void
PgDomain::tick(Cycle now, bool busy, Cycle idle_detect,
               bool coord_peer_gated, std::uint32_t coord_actv)
{
    if (busy && state_ != PgState::On)
        panic("PgDomain: busy while ", pgStateName(state_), " at cycle ",
              now);

    // Idle-period bookkeeping is independent of gating state: an idle
    // period is any maximal run of pipeline-empty cycles (Fig. 3).
    if (busy) {
        if (idle_run_ > 0) {
            traceEvent(now, trace::EventKind::UnitBusy, 0,
                       static_cast<std::uint32_t>(idle_run_));
            idle_hist_.add(idle_run_);
            idle_run_ = 0;
        }
    } else {
        ++idle_run_;
        if (idle_run_ == 1)
            traceEvent(now, trace::EventKind::UnitIdle);
    }

    switch (state_) {
      case PgState::On:
        if (busy) {
            ++stats_.busyCycles;
            idle_count_ = 0;
        } else {
            ++stats_.idleOnCycles;
            ++idle_count_;
            if (params_.policy != PgPolicy::None) {
                bool gate = false;
                trace::GateReason reason = trace::GateReason::IdleDetect;
                if (params_.policy == PgPolicy::CoordinatedBlackout &&
                    coord_peer_gated) {
                    if (coord_actv == 0) {
                        // Second cluster gates immediately: nothing of
                        // this type is even waiting to become ready.
                        gate = true;
                        if (idle_count_ < idle_detect) {
                            ++stats_.coordImmediateGates;
                            reason = trace::GateReason::CoordDrain;
                        }
                    } else if (idle_count_ >= idle_detect) {
                        // Would have gated, but a warp of this type
                        // waits in the active subset: keep one cluster
                        // of the pair powered.
                        ++stats_.coordGateVetoes;
                    }
                } else if (idle_count_ >= idle_detect) {
                    gate = true;
                }
                if (gate)
                    enterGated(now, reason, coord_actv);
            }
        }
        break;

      case PgState::Uncompensated:
        ++stats_.uncompCycles;
        if (--bet_remaining_ == 0) {
            state_ = PgState::Compensated;
            compensated_at_ = now;
            traceEvent(now, trace::EventKind::BetExpire, 0,
                       static_cast<std::uint32_t>(params_.breakEven));
            // Fall through behaviour: a request pending at the exact
            // cycle the blackout ends is the paper's critical wakeup
            // (a blackout-only concept; conventional gating would have
            // woken earlier).
            if (wakeup_requested_) {
                if (params_.policy != PgPolicy::Conventional) {
                    ++stats_.criticalWakeups;
                    ++epoch_critical_;
                    beginWakeup(now, trace::WakeReason::Critical);
                } else {
                    beginWakeup(now, trace::WakeReason::Demand);
                }
            }
        } else if (wakeup_requested_) {
            if (params_.policy == PgPolicy::Conventional) {
                // Conventional gating may wake before break-even: the
                // gating attempt nets an energy loss.
                ++stats_.uncompWakeups;
                beginWakeup(now, trace::WakeReason::Uncompensated);
            } else {
                // Blackout hold: the request is remembered by the SM's
                // demand logic, not honoured before break-even.
                traceEvent(now, trace::EventKind::WakeupDenied);
            }
        }
        break;

      case PgState::Compensated:
        ++stats_.compCycles;
        if (wakeup_requested_) {
            if (now == compensated_at_ &&
                params_.policy != PgPolicy::Conventional) {
                ++stats_.criticalWakeups;
                ++epoch_critical_;
                beginWakeup(now, trace::WakeReason::Critical);
            } else {
                beginWakeup(now, trace::WakeReason::Demand);
            }
        }
        break;

      case PgState::Wakeup:
        ++stats_.wakeupCycles;
        if (--wakeup_remaining_ == 0) {
            state_ = PgState::On;
            idle_count_ = 0;
            traceEvent(now, trace::EventKind::WakeupDone);
        }
        break;
    }

    wakeup_requested_ = false;
}

Cycle
PgDomain::nextEventCycle(Cycle now, bool busy, Cycle idle_detect,
                         bool coord_peer_gated,
                         std::uint32_t coord_actv) const
{
    switch (state_) {
      case PgState::On:
        if (busy || params_.policy == PgPolicy::None)
            return kNeverCycle;
        if (params_.policy == PgPolicy::CoordinatedBlackout &&
            coord_peer_gated) {
            if (coord_actv == 0)
                return now; // immediate second-cluster gate
            if (idle_count_ + 1 >= idle_detect)
                return kNeverCycle; // established veto regime: uniform
            // The veto counter starts the cycle idle_count_ crosses
            // the window — a per-cycle regime change.
            return now + (idle_detect - idle_count_ - 1);
        }
        if (idle_count_ + 1 >= idle_detect)
            return now; // gates this very cycle
        return now + (idle_detect - idle_count_ - 1);

      case PgState::Uncompensated:
        // bet_remaining_ >= 1 here (0 transitions out immediately).
        return now + bet_remaining_ - 1;

      case PgState::Compensated:
        return kNeverCycle; // leaves only on a wakeup request

      case PgState::Wakeup:
        return now + wakeup_remaining_ - 1;
    }
    return kNeverCycle;
}

void
PgDomain::fastForward(Cycle n, bool busy, Cycle idle_detect,
                      bool coord_peer_gated, std::uint32_t coord_actv)
{
    if (!busy)
        idle_run_ += n; // run already open (>= 1 after the last tick)

    switch (state_) {
      case PgState::On:
        if (busy) {
            stats_.busyCycles += n; // idle_count_ already 0
        } else {
            stats_.idleOnCycles += n;
            const bool veto_regime =
                params_.policy == PgPolicy::CoordinatedBlackout &&
                coord_peer_gated && coord_actv > 0 &&
                idle_count_ + 1 >= idle_detect;
            idle_count_ += n;
            if (veto_regime)
                stats_.coordGateVetoes += n;
        }
        break;
      case PgState::Uncompensated:
        stats_.uncompCycles += n;
        bet_remaining_ -= n; // stays >= 1: span ends before expiry
        break;
      case PgState::Compensated:
        stats_.compCycles += n;
        break;
      case PgState::Wakeup:
        stats_.wakeupCycles += n;
        wakeup_remaining_ -= n;
        break;
    }
}

void
PgDomain::finalize(Cycle now)
{
    (void)now;
    if (idle_run_ > 0) {
        idle_hist_.add(idle_run_);
        idle_run_ = 0;
    }
}

} // namespace wg
