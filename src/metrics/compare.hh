/**
 * @file
 * Tolerance-gated comparison of two metric registries — the engine
 * behind `wgreport`, usable from CI as a perf/energy trajectory gate.
 */

#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/table.hh"

namespace wg::metrics {

/** Comparison policy. */
struct CompareOptions
{
    /** Global relative tolerance: |test - base| / |base| above this
     *  flags the metric. 0 = exact match required. */
    double relTol = 0.0;

    /** Absolute floor: deltas at or below this never flag, and a
     *  zero-baseline metric flags only beyond it. Absorbs FP noise. */
    double absTol = 1e-12;

    /** Per-metric relative-tolerance overrides (exact-name match). */
    std::map<std::string, double> perMetric;

    /** Name prefixes excluded from comparison. `profile.` metrics are
     *  wall-clock and never comparable across runs. */
    std::vector<std::string> ignorePrefixes = {"profile."};
};

/** One metric's comparison outcome. */
struct MetricDelta
{
    std::string name;
    double base = 0.0;
    double test = 0.0;
    double delta = 0.0;     ///< test - base
    double rel = 0.0;       ///< delta / |base| (0 when base == 0)
    bool onlyInBase = false;
    bool onlyInTest = false;
    bool beyondTolerance = false;
};

/** Full comparison outcome. */
struct CompareReport
{
    std::vector<MetricDelta> deltas; ///< union of names, name order
    std::size_t compared = 0;        ///< metrics examined
    std::size_t changed = 0;         ///< nonzero delta or missing
    std::size_t regressions = 0;     ///< beyond tolerance
};

/** Compare @p test against @p base under @p opts. */
CompareReport compareStatSets(const StatSet& base, const StatSet& test,
                              const CompareOptions& opts = {});

/**
 * Render the report as a terminal table. @p show_all includes
 * unchanged metrics; otherwise only changed ones are listed.
 */
Table renderComparison(const CompareReport& report,
                       const std::string& base_label,
                       const std::string& test_label, bool show_all);

} // namespace wg::metrics

