#include "loader.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace wg::metrics {

namespace {

/**
 * Minimal recursive-descent JSON reader, just enough for the wgsim
 * result documents and the wgmetrics JSONL lines. Numeric/boolean
 * leaves are emitted into a StatSet under dotted keys; strings and
 * nulls parse but emit nothing.
 */
class JsonFlattener
{
  public:
    JsonFlattener(const std::string& text, StatSet& out)
        : text_(text), out_(out)
    {
    }

    bool
    run(std::string& error)
    {
        pos_ = 0;
        if (!value("")) {
            error = error_.empty() ? "malformed JSON" : error_;
            return false;
        }
        skipWs();
        if (pos_ != text_.size()) {
            error = "trailing content after JSON document";
            return false;
        }
        return true;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    fail(const std::string& what)
    {
        error_ = what + " at offset " + std::to_string(pos_);
        return false;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos_ >= text_.size() || text_[pos_] != c)
            return fail(std::string("expected '") + c + "'");
        ++pos_;
        return true;
    }

    bool
    parseString(std::string& out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    return fail("bad escape");
                char e = text_[pos_++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'u':
                    // Registry names are ASCII; keep the raw escape.
                    if (pos_ + 4 > text_.size())
                        return fail("bad \\u escape");
                    out += "\\u" + text_.substr(pos_, 4);
                    pos_ += 4;
                    break;
                  default: return fail("bad escape");
                }
            } else {
                out += c;
            }
        }
        return fail("unterminated string");
    }

    bool
    value(const std::string& key)
    {
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        if (c == '{')
            return object(key);
        if (c == '[')
            return array(key);
        if (c == '"') {
            std::string ignored;
            return parseString(ignored);
        }
        if (text_.compare(pos_, 4, "true") == 0) {
            pos_ += 4;
            if (!key.empty())
                out_.set(key, 1.0);
            return true;
        }
        if (text_.compare(pos_, 5, "false") == 0) {
            pos_ += 5;
            if (!key.empty())
                out_.set(key, 0.0);
            return true;
        }
        if (text_.compare(pos_, 4, "null") == 0) {
            pos_ += 4;
            return true;
        }
        return number(key);
    }

    bool
    number(const std::string& key)
    {
        const char* start = text_.c_str() + pos_;
        char* end = nullptr;
        double v = std::strtod(start, &end);
        if (end == start)
            return fail("expected a value");
        pos_ += static_cast<std::size_t>(end - start);
        if (!key.empty())
            out_.set(key, v);
        return true;
    }

    bool
    object(const std::string& prefix)
    {
        if (!consume('{'))
            return false;
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            std::string name;
            skipWs();
            if (!parseString(name))
                return false;
            if (!consume(':'))
                return false;
            std::string key =
                prefix.empty() ? name : prefix + "." + name;
            if (!value(key))
                return false;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            return consume('}');
        }
    }

    bool
    array(const std::string& prefix)
    {
        if (!consume('['))
            return false;
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        std::size_t index = 0;
        for (;;) {
            std::string key = prefix.empty()
                                  ? std::to_string(index)
                                  : prefix + "." +
                                        std::to_string(index);
            if (!value(key))
                return false;
            ++index;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            return consume(']');
        }
    }

    const std::string& text_;
    StatSet& out_;
    std::size_t pos_ = 0;
    std::string error_;
};

/** Dotted registry name from a Prometheus sample name. */
std::string
fromPromName(const std::string& name)
{
    std::string out =
        name.compare(0, 3, "wg_") == 0 ? name.substr(3) : name;
    for (char& c : out)
        if (c == '_')
            c = '.';
    return out;
}

bool
parseProm(const std::string& content, StatSet& out, std::string& error)
{
    std::istringstream is(content);
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::size_t space = line.find(' ');
        if (space == std::string::npos) {
            error = "malformed exposition line: " + line;
            return false;
        }
        char* end = nullptr;
        double v = std::strtod(line.c_str() + space + 1, &end);
        if (end == line.c_str() + space + 1) {
            error = "bad sample value: " + line;
            return false;
        }
        out.set(fromPromName(line.substr(0, space)), v);
    }
    return true;
}

bool
parseFinalCsv(const std::string& content, StatSet& out,
              std::string& error)
{
    std::istringstream is(content);
    std::string line;
    bool in_final = false;
    bool seen_final = false;
    while (std::getline(is, line)) {
        if (line.rfind("# final", 0) == 0) {
            in_final = true;
            seen_final = true;
            continue;
        }
        if (!in_final || line.empty() || line[0] == '#' ||
            line == "name,value")
            continue;
        std::size_t comma = line.rfind(',');
        if (comma == std::string::npos) {
            error = "malformed final-section line: " + line;
            return false;
        }
        out.set(line.substr(0, comma),
                std::strtod(line.c_str() + comma + 1, nullptr));
    }
    if (!seen_final) {
        error = "no '# final' section in metrics CSV";
        return false;
    }
    return true;
}

bool
parseJsonl(const std::string& content, StatSet& out, std::string& error)
{
    std::istringstream is(content);
    std::string line;
    while (std::getline(is, line)) {
        if (line.find("\"type\":\"final\"") == std::string::npos)
            continue;
        StatSet flat;
        if (!flattenJson(line, flat, error))
            return false;
        // Strip the enclosing {"type":"final","stats":{...}} level.
        for (const auto& [name, value] : flat.entries()) {
            if (name.rfind("stats.", 0) == 0)
                out.set(name.substr(6), value);
        }
        return true;
    }
    error = "no final-registry line in metrics JSONL";
    return false;
}

} // namespace

bool
flattenJson(const std::string& json, StatSet& out, std::string& error)
{
    return JsonFlattener(json, out).run(error);
}

bool
parseStatSet(const std::string& content, StatSet& out,
             std::string& error)
{
    std::size_t first = content.find_first_not_of(" \t\r\n");
    if (first == std::string::npos) {
        error = "empty input";
        return false;
    }
    if (content[first] == '{') {
        // wgmetrics JSONL (typed lines) or a plain JSON document.
        std::size_t eol = content.find('\n', first);
        std::string head = content.substr(
            first, eol == std::string::npos ? std::string::npos
                                            : eol - first);
        if (head.find("\"wgmetrics\"") != std::string::npos)
            return parseJsonl(content, out, error);
        return flattenJson(content, out, error);
    }
    if (content.compare(first, 11, "# wgmetrics") == 0)
        return parseFinalCsv(content, out, error);
    // Everything else: OpenMetrics text exposition.
    return parseProm(content, out, error);
}

StatSet
loadStatSet(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open '", path, "' for reading");
    std::ostringstream buf;
    buf << in.rdbuf();
    StatSet out;
    std::string error;
    if (!parseStatSet(buf.str(), out, error))
        fatal("cannot parse '", path, "': ", error);
    return out;
}

} // namespace wg::metrics
