/**
 * @file
 * Offline loading of metrics/result files back into a StatSet.
 *
 * wgreport (and tests) accept any of:
 *   - wgmetrics JSONL (`--metrics-format jsonl`): the final registry
 *     line is loaded; epoch lines are skipped.
 *   - wgmetrics CSV (`--metrics-format csv`): the `# final` section.
 *   - OpenMetrics/Prometheus text (`--metrics-format prom`): `wg_`
 *     sample names are mapped back to dotted registry names.
 *   - a wgsim --json result document: every numeric leaf is flattened
 *     to a dotted key (arrays index as `.0`, `.1`, ...), so two such
 *     documents compare key-for-key.
 *
 * The format is auto-detected from the content.
 */

#pragma once

#include <string>

#include "common/stats.hh"

namespace wg::metrics {

/**
 * Parse @p content (any supported format) into @p out.
 * @return false (with @p error set) on malformed input.
 */
bool parseStatSet(const std::string& content, StatSet& out,
                  std::string& error);

/** Load @p path; fatal() on I/O or parse failure. */
StatSet loadStatSet(const std::string& path);

/**
 * Flatten one JSON document: every numeric (or boolean) leaf becomes
 * `a.b.c` -> value; array elements use their index as the key
 * component. Strings and nulls are ignored.
 * @return false (with @p error set) on malformed JSON.
 */
bool flattenJson(const std::string& json, StatSet& out,
                 std::string& error);

} // namespace wg::metrics

