#include "exporters.hh"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "common/logging.hh"

namespace wg::metrics {

namespace {

/**
 * The epoch-sample schema, shared by the CSV header, the CSV rows and
 * the JSONL epoch objects so the two series formats cannot diverge.
 */
struct EpochField
{
    const char* name;
    std::uint64_t (*get)(const EpochSample&);
};

constexpr EpochField kEpochFields[] = {
    {"issued", [](const EpochSample& s) { return s.delta.issued; }},
    {"intBusyCycles",
     [](const EpochSample& s) { return s.delta.intBusyCycles; }},
    {"intGatedCycles",
     [](const EpochSample& s) { return s.delta.intGatedCycles; }},
    {"intCompCycles",
     [](const EpochSample& s) { return s.delta.intCompCycles; }},
    {"intGatingEvents",
     [](const EpochSample& s) { return s.delta.intGatingEvents; }},
    {"intWakeups",
     [](const EpochSample& s) { return s.delta.intWakeups; }},
    {"intCriticalWakeups",
     [](const EpochSample& s) { return s.delta.intCriticalWakeups; }},
    {"intIdleDetect",
     [](const EpochSample& s) {
         return static_cast<std::uint64_t>(s.delta.intIdleDetect);
     }},
    {"fpBusyCycles",
     [](const EpochSample& s) { return s.delta.fpBusyCycles; }},
    {"fpGatedCycles",
     [](const EpochSample& s) { return s.delta.fpGatedCycles; }},
    {"fpCompCycles",
     [](const EpochSample& s) { return s.delta.fpCompCycles; }},
    {"fpGatingEvents",
     [](const EpochSample& s) { return s.delta.fpGatingEvents; }},
    {"fpWakeups",
     [](const EpochSample& s) { return s.delta.fpWakeups; }},
    {"fpCriticalWakeups",
     [](const EpochSample& s) { return s.delta.fpCriticalWakeups; }},
    {"fpIdleDetect",
     [](const EpochSample& s) {
         return static_cast<std::uint64_t>(s.delta.fpIdleDetect);
     }},
    {"memMisses",
     [](const EpochSample& s) { return s.delta.memMisses; }},
    {"mshrRejects",
     [](const EpochSample& s) { return s.delta.mshrRejects; }},
    {"wakeupRequests",
     [](const EpochSample& s) { return s.delta.wakeupRequests; }},
    {"activeAccum",
     [](const EpochSample& s) { return s.delta.activeAccum; }},
};

/** Visit every sample in SM-major, epoch-minor order. */
template <typename Fn>
void
forEachSample(const Collector& collector, Fn&& fn)
{
    for (SmId sm = 0; sm < collector.numSms(); ++sm) {
        const EpochSampler* sampler = collector.sampler(sm);
        if (!sampler)
            continue;
        for (const EpochSample& s : sampler->samples())
            fn(sm, s);
    }
}

} // namespace

const char*
metricsFormatName(MetricsFormat format)
{
    switch (format) {
      case MetricsFormat::Csv: return "csv";
      case MetricsFormat::Jsonl: return "jsonl";
      case MetricsFormat::Prom: return "prom";
    }
    return "?";
}

bool
parseMetricsFormat(const std::string& name, MetricsFormat& out)
{
    for (MetricsFormat f : {MetricsFormat::Csv, MetricsFormat::Jsonl,
                            MetricsFormat::Prom}) {
        if (name == metricsFormatName(f)) {
            out = f;
            return true;
        }
    }
    return false;
}

std::string
formatMetricValue(double value)
{
    constexpr double kMaxExactInt = 9007199254740992.0; // 2^53
    if (std::isfinite(value) && value == std::floor(value) &&
        std::fabs(value) < kMaxExactInt) {
        return std::to_string(static_cast<long long>(value));
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

std::string
promName(const std::string& name)
{
    std::string out = "wg_";
    out.reserve(name.size() + 3);
    for (char c : name)
        out += c == '.' ? '_' : c;
    return out;
}

void
writeProm(std::ostream& os, const StatSet& set)
{
    for (const auto& [name, value] : set.entries()) {
        std::string pn = promName(name);
        os << "# TYPE " << pn << " gauge\n"
           << pn << ' ' << formatMetricValue(value) << '\n';
    }
    os << "# EOF\n";
}

void
writeMetricsJsonl(std::ostream& os, const Collector* collector,
                  const StatSet& set)
{
    os << "{\"type\":\"meta\",\"format\":\"wgmetrics\",\"version\":1";
    if (collector) {
        os << ",\"epochLength\":" << collector->epochLength()
           << ",\"numSms\":" << collector->numSms();
    }
    os << "}\n";

    if (collector) {
        forEachSample(*collector, [&](SmId sm, const EpochSample& s) {
            os << "{\"type\":\"epoch\",\"sm\":" << sm
               << ",\"epoch\":" << s.epoch
               << ",\"cycleEnd\":" << s.cycleEnd
               << ",\"cycles\":" << s.cycles;
            for (const EpochField& f : kEpochFields)
                os << ",\"" << f.name << "\":" << f.get(s);
            os << "}\n";
        });
    }

    os << "{\"type\":\"final\",\"stats\":{";
    bool first = true;
    for (const auto& [name, value] : set.entries()) {
        if (!first)
            os << ',';
        first = false;
        os << '"' << name << "\":" << formatMetricValue(value);
    }
    os << "}}\n";
}

void
writeMetricsCsv(std::ostream& os, const Collector* collector,
                const StatSet& set)
{
    os << "# wgmetrics v1";
    if (collector) {
        os << " epochLength=" << collector->epochLength()
           << " numSms=" << collector->numSms();
    }
    os << '\n';

    if (collector) {
        os << "sm,epoch,cycleEnd,cycles";
        for (const EpochField& f : kEpochFields)
            os << ',' << f.name;
        os << '\n';
        forEachSample(*collector, [&](SmId sm, const EpochSample& s) {
            os << sm << ',' << s.epoch << ',' << s.cycleEnd << ','
               << s.cycles;
            for (const EpochField& f : kEpochFields)
                os << ',' << f.get(s);
            os << '\n';
        });
    }

    os << "# final\nname,value\n";
    for (const auto& [name, value] : set.entries())
        os << name << ',' << formatMetricValue(value) << '\n';
}

void
writeMetrics(std::ostream& os, const Collector* collector,
             const StatSet& set, MetricsFormat format)
{
    switch (format) {
      case MetricsFormat::Csv:
        writeMetricsCsv(os, collector, set);
        return;
      case MetricsFormat::Jsonl:
        writeMetricsJsonl(os, collector, set);
        return;
      case MetricsFormat::Prom:
        writeProm(os, set);
        return;
    }
    panic("writeMetrics: bad format");
}

void
writeMetricsFile(const std::string& path, const Collector* collector,
                 const StatSet& set, MetricsFormat format)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open '", path, "' for writing");
    writeMetrics(out, collector, set, format);
    if (!out)
        fatal("write to '", path, "' failed");
}

} // namespace wg::metrics
