#include "exporters.hh"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/logging.hh"

namespace wg::metrics {

namespace {

/**
 * The epoch-sample schema, shared by the CSV header, the CSV rows and
 * the JSONL epoch objects so the two series formats cannot diverge.
 */
struct EpochField
{
    const char* name;
    std::uint64_t (*get)(const EpochSample&);
};

constexpr EpochField kEpochFields[] = {
    {"issued", [](const EpochSample& s) { return s.delta.issued; }},
    {"intBusyCycles",
     [](const EpochSample& s) { return s.delta.intBusyCycles; }},
    {"intGatedCycles",
     [](const EpochSample& s) { return s.delta.intGatedCycles; }},
    {"intCompCycles",
     [](const EpochSample& s) { return s.delta.intCompCycles; }},
    {"intGatingEvents",
     [](const EpochSample& s) { return s.delta.intGatingEvents; }},
    {"intWakeups",
     [](const EpochSample& s) { return s.delta.intWakeups; }},
    {"intCriticalWakeups",
     [](const EpochSample& s) { return s.delta.intCriticalWakeups; }},
    {"intIdleDetect",
     [](const EpochSample& s) {
         return static_cast<std::uint64_t>(s.delta.intIdleDetect);
     }},
    {"fpBusyCycles",
     [](const EpochSample& s) { return s.delta.fpBusyCycles; }},
    {"fpGatedCycles",
     [](const EpochSample& s) { return s.delta.fpGatedCycles; }},
    {"fpCompCycles",
     [](const EpochSample& s) { return s.delta.fpCompCycles; }},
    {"fpGatingEvents",
     [](const EpochSample& s) { return s.delta.fpGatingEvents; }},
    {"fpWakeups",
     [](const EpochSample& s) { return s.delta.fpWakeups; }},
    {"fpCriticalWakeups",
     [](const EpochSample& s) { return s.delta.fpCriticalWakeups; }},
    {"fpIdleDetect",
     [](const EpochSample& s) {
         return static_cast<std::uint64_t>(s.delta.fpIdleDetect);
     }},
    {"memMisses",
     [](const EpochSample& s) { return s.delta.memMisses; }},
    {"mshrRejects",
     [](const EpochSample& s) { return s.delta.mshrRejects; }},
    {"wakeupRequests",
     [](const EpochSample& s) { return s.delta.wakeupRequests; }},
    {"activeAccum",
     [](const EpochSample& s) { return s.delta.activeAccum; }},
};

/** Visit every sample in SM-major, epoch-minor order. */
template <typename Fn>
void
forEachSample(const Collector& collector, Fn&& fn)
{
    for (SmId sm = 0; sm < collector.numSms(); ++sm) {
        const EpochSampler* sampler = collector.sampler(sm);
        if (!sampler)
            continue;
        for (const EpochSample& s : sampler->samples())
            fn(sm, s);
    }
}

/**
 * The # HELP catalogue, longest-prefix matched against dotted names.
 * Every registry namespace must appear here; the schema-drift guard
 * test fails the build when a new namespace ships without an entry.
 */
struct HelpEntry
{
    const char* prefix;
    const char* help;
};

constexpr HelpEntry kHelpCatalogue[] = {
    {"gpu.pg.",
     "power-gating counters per execution-unit cluster, aggregated"
     " across SMs"},
    {"gpu.energy.",
     "energy-model breakdown in joules (dynamic/static/overhead) per"
     " unit type"},
    {"gpu.sched.",
     "gating-aware scheduler counters (active-set size, priority"
     " switches, wakeup requests)"},
    {"gpu.mem.",
     "memory-path counters (hits, misses, stores, MSHR rejects)"},
    {"gpu.adaptive.",
     "adaptive idle-detect controller state and adjustment counts"},
    {"gpu.units.", "SFU/LDST issue and busy-cycle counters"},
    {"gpu.issued.", "instructions issued per execution-unit class"},
    {"gpu.", "whole-GPU aggregate counters (cycles, IPC, warps)"},
    {"sm", "per-SM cycle counts"},
    {"config.",
     "configuration echo of the run (SMs, seed, gating parameters)"},
    {"profile.",
     "wall-clock self-profiling of simulator phases and the thread"
     " pool"},
    {"serve.latency.",
     "wgservd job-latency summaries in seconds (full histograms on"
     " the /metrics exposition)"},
    {"serve.subscriptions.",
     "live-stream subscription counters (active, opened, dropped"
     " frames)"},
    {"serve.",
     "wgservd job-manager gauges (queue, jobs, cells, result cache)"},
    {"pool.",
     "shared thread-pool self-profiling (tasks, steals, queue depth,"
     " drain state)"},
};

const char*
findHelp(const std::string& name)
{
    const char* best = nullptr;
    std::size_t best_len = 0;
    for (const HelpEntry& e : kHelpCatalogue) {
        std::size_t len = std::char_traits<char>::length(e.prefix);
        if (len >= best_len && name.compare(0, len, e.prefix) == 0) {
            best = e.help;
            best_len = len;
        }
    }
    return best;
}

/** Short, round-number formatting for `le` labels (%g). */
std::string
formatLe(double bound)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", bound);
    return buf;
}

} // namespace

const char*
metricsFormatName(MetricsFormat format)
{
    switch (format) {
      case MetricsFormat::Csv: return "csv";
      case MetricsFormat::Jsonl: return "jsonl";
      case MetricsFormat::Prom: return "prom";
    }
    return "?";
}

bool
parseMetricsFormat(const std::string& name, MetricsFormat& out)
{
    for (MetricsFormat f : {MetricsFormat::Csv, MetricsFormat::Jsonl,
                            MetricsFormat::Prom}) {
        if (name == metricsFormatName(f)) {
            out = f;
            return true;
        }
    }
    return false;
}

std::string
formatMetricValue(double value)
{
    constexpr double kMaxExactInt = 9007199254740992.0; // 2^53
    if (std::isfinite(value) && value == std::floor(value) &&
        std::fabs(value) < kMaxExactInt) {
        return std::to_string(static_cast<long long>(value));
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

std::string
promName(const std::string& name)
{
    std::string out = "wg_";
    out.reserve(name.size() + 3);
    for (char c : name)
        out += c == '.' ? '_' : c;
    return out;
}

std::string
metricHelp(const std::string& name)
{
    const char* help = findHelp(name);
    return help != nullptr ? help : "uncatalogued simulator metric";
}

bool
metricHelpKnown(const std::string& name)
{
    return findHelp(name) != nullptr;
}

void
writePromGauges(std::ostream& os, const StatSet& set)
{
    for (const auto& [name, value] : set.entries()) {
        std::string pn = promName(name);
        os << "# HELP " << pn << ' ' << metricHelp(name) << '\n'
           << "# TYPE " << pn << " gauge\n"
           << pn << ' ' << formatMetricValue(value) << '\n';
    }
}

void
writePromHistogram(std::ostream& os, const std::string& name,
                   const std::string& help,
                   const LatencyHistogram& hist)
{
    std::string pn = promName(name);
    os << "# HELP " << pn << ' ' << help << '\n'
       << "# TYPE " << pn << " histogram\n";
    for (std::size_t i = 0; i < hist.bounds().size(); ++i) {
        os << pn << "_bucket{le=\"" << formatLe(hist.bounds()[i])
           << "\"} " << hist.cumulative(i) << '\n';
    }
    os << pn << "_bucket{le=\"+Inf\"} " << hist.total() << '\n'
       << pn << "_sum " << formatMetricValue(hist.sum()) << '\n'
       << pn << "_count " << hist.total() << '\n';
}

void
writeProm(std::ostream& os, const StatSet& set)
{
    writePromGauges(os, set);
    os << "# EOF\n";
}

std::string
jsonlMetaLine(bool have_series, Cycle epoch_length,
              std::uint32_t num_sms)
{
    std::ostringstream os;
    os << "{\"type\":\"meta\",\"format\":\"wgmetrics\",\"version\":1";
    if (have_series) {
        os << ",\"epochLength\":" << epoch_length
           << ",\"numSms\":" << num_sms;
    }
    os << "}";
    return os.str();
}

std::string
jsonlEpochLine(SmId sm, const EpochSample& s)
{
    std::ostringstream os;
    os << "{\"type\":\"epoch\",\"sm\":" << sm
       << ",\"epoch\":" << s.epoch << ",\"cycleEnd\":" << s.cycleEnd
       << ",\"cycles\":" << s.cycles;
    for (const EpochField& f : kEpochFields)
        os << ",\"" << f.name << "\":" << f.get(s);
    os << "}";
    return os.str();
}

std::string
jsonlFinalLine(const StatSet& set)
{
    std::ostringstream os;
    os << "{\"type\":\"final\",\"stats\":{";
    bool first = true;
    for (const auto& [name, value] : set.entries()) {
        if (!first)
            os << ',';
        first = false;
        os << '"' << name << "\":" << formatMetricValue(value);
    }
    os << "}}";
    return os.str();
}

void
writeMetricsJsonl(std::ostream& os, const Collector* collector,
                  const StatSet& set)
{
    os << jsonlMetaLine(collector != nullptr,
                        collector ? collector->epochLength() : 0,
                        collector ? collector->numSms() : 0)
       << '\n';

    if (collector) {
        forEachSample(*collector, [&](SmId sm, const EpochSample& s) {
            os << jsonlEpochLine(sm, s) << '\n';
        });
    }

    os << jsonlFinalLine(set) << '\n';
}

void
writeMetricsCsv(std::ostream& os, const Collector* collector,
                const StatSet& set)
{
    os << "# wgmetrics v1";
    if (collector) {
        os << " epochLength=" << collector->epochLength()
           << " numSms=" << collector->numSms();
    }
    os << '\n';

    if (collector) {
        os << "sm,epoch,cycleEnd,cycles";
        for (const EpochField& f : kEpochFields)
            os << ',' << f.name;
        os << '\n';
        forEachSample(*collector, [&](SmId sm, const EpochSample& s) {
            os << sm << ',' << s.epoch << ',' << s.cycleEnd << ','
               << s.cycles;
            for (const EpochField& f : kEpochFields)
                os << ',' << f.get(s);
            os << '\n';
        });
    }

    os << "# final\nname,value\n";
    for (const auto& [name, value] : set.entries())
        os << name << ',' << formatMetricValue(value) << '\n';
}

void
writeMetrics(std::ostream& os, const Collector* collector,
             const StatSet& set, MetricsFormat format)
{
    switch (format) {
      case MetricsFormat::Csv:
        writeMetricsCsv(os, collector, set);
        return;
      case MetricsFormat::Jsonl:
        writeMetricsJsonl(os, collector, set);
        return;
      case MetricsFormat::Prom:
        writeProm(os, set);
        return;
    }
    panic("writeMetrics: bad format");
}

void
writeMetricsFile(const std::string& path, const Collector* collector,
                 const StatSet& set, MetricsFormat format)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open '", path, "' for writing");
    writeMetrics(out, collector, set, format);
    if (!out)
        fatal("write to '", path, "' failed");
}

} // namespace wg::metrics
