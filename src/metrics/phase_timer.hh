/**
 * @file
 * Self-profiling wall-clock phase timers.
 *
 * The simulator publishes where its own wall-clock time goes (workload
 * generation, the sim loop, the energy model, export) into the same
 * metrics registry as the simulation counters, under the `profile.`
 * prefix. Phase times are wall-clock and therefore NOT deterministic:
 * exporters only include them when explicitly requested (wgsim
 * --profile) and wgreport ignores the `profile.` prefix by default, so
 * the serial-vs-pooled byte-identity of metrics files is preserved.
 *
 * Header-only for the same layering reason as the sampler: wg::sim
 * fills timers while wg::metrics serialises them.
 */

#pragma once

#include <chrono>
#include <map>
#include <string>

#include "common/stats.hh"

namespace wg::metrics {

/** Named wall-clock accumulators, one per pipeline phase. */
class PhaseTimers
{
  public:
    /** RAII scope that adds its lifetime to one phase. */
    class Scope
    {
      public:
        Scope(PhaseTimers* timers, std::string phase)
            : timers_(timers), phase_(std::move(phase)),
              start_(std::chrono::steady_clock::now())
        {
        }

        ~Scope()
        {
            if (timers_)
                timers_->add(
                    phase_,
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start_)
                        .count());
        }

        Scope(const Scope&) = delete;
        Scope& operator=(const Scope&) = delete;

      private:
        PhaseTimers* timers_;
        std::string phase_;
        std::chrono::steady_clock::time_point start_;
    };

    /** Time the enclosing scope under @p phase. Null-safe is the
     *  caller's job: construct Scope(nullptr, ...) for "off". */
    Scope time(const std::string& phase) { return Scope(this, phase); }

    /** Add @p seconds to @p phase. */
    void add(const std::string& phase, double seconds)
    {
        seconds_[phase] += seconds;
    }

    /** Accumulated seconds per phase, in name order. */
    const std::map<std::string, double>& seconds() const
    {
        return seconds_;
    }

    double get(const std::string& phase) const
    {
        auto it = seconds_.find(phase);
        return it == seconds_.end() ? 0.0 : it->second;
    }

    /**
     * Publish every phase into @p set as `<prefix>.<phase>` (seconds).
     * Phase names must not contain '_' (the Prometheus exporter maps
     * '.' <-> '_' bijectively); use camelCase.
     */
    void
    publish(StatSet& set, const std::string& prefix = "profile.phase")
        const
    {
        for (const auto& [phase, secs] : seconds_)
            set.set(prefix + "." + phase, secs);
    }

  private:
    std::map<std::string, double> seconds_;
};

} // namespace wg::metrics

