#include "registry.hh"

namespace wg::metrics {

void
appendPgDomainStats(StatSet& set, const std::string& prefix,
                    const PgDomainStats& s)
{
    set.set(prefix + ".busyCycles", static_cast<double>(s.busyCycles));
    set.set(prefix + ".idleOnCycles",
            static_cast<double>(s.idleOnCycles));
    set.set(prefix + ".uncompCycles",
            static_cast<double>(s.uncompCycles));
    set.set(prefix + ".compCycles", static_cast<double>(s.compCycles));
    set.set(prefix + ".wakeupCycles",
            static_cast<double>(s.wakeupCycles));
    set.set(prefix + ".gatingEvents",
            static_cast<double>(s.gatingEvents));
    set.set(prefix + ".wakeups", static_cast<double>(s.wakeups));
    set.set(prefix + ".uncompWakeups",
            static_cast<double>(s.uncompWakeups));
    set.set(prefix + ".criticalWakeups",
            static_cast<double>(s.criticalWakeups));
    set.set(prefix + ".coordImmediateGates",
            static_cast<double>(s.coordImmediateGates));
    set.set(prefix + ".coordGateVetoes",
            static_cast<double>(s.coordGateVetoes));
}

void
appendClusterStats(StatSet& set, const std::string& prefix,
                   const ClusterStats& s)
{
    appendPgDomainStats(set, prefix, s.pg);
    set.set(prefix + ".issues", static_cast<double>(s.issues));
}

void
appendUnitEnergy(StatSet& set, const std::string& prefix,
                 const UnitEnergy& e)
{
    set.set(prefix + ".dynamicJ", e.dynamicE);
    set.set(prefix + ".staticJ", e.staticE);
    set.set(prefix + ".overheadJ", e.overheadE);
    set.set(prefix + ".staticSavedJ", e.staticSaved);
    set.set(prefix + ".staticNoPgJ", e.staticNoPg);
    set.set(prefix + ".totalJ", e.total());
    set.set(prefix + ".savingsRatio", e.staticSavingsRatio());
}

void
appendSmStats(StatSet& set, const std::string& prefix, const SmStats& s)
{
    set.set(prefix + ".cycles", static_cast<double>(s.cycles));
    set.set(prefix + ".completed", s.completed ? 1.0 : 0.0);

    set.set(prefix + ".instructions",
            static_cast<double>(s.issuedTotal));
    static const char* kClassNames[kNumUnitClasses] = {"int", "fp",
                                                       "sfu", "ldst"};
    for (std::size_t c = 0; c < kNumUnitClasses; ++c)
        set.set(prefix + ".issued." + kClassNames[c],
                static_cast<double>(s.issuedByClass[c]));

    static const char* kClusterNames[2][2] = {{"int0", "int1"},
                                              {"fp0", "fp1"}};
    for (unsigned t = 0; t < 2; ++t)
        for (unsigned c = 0; c < 2; ++c)
            appendClusterStats(set,
                               prefix + ".pg." + kClusterNames[t][c],
                               s.clusters[t][c]);
    appendClusterStats(set, prefix + ".pg.sfu", s.sfuCluster);

    set.set(prefix + ".units.sfuIssues",
            static_cast<double>(s.sfuIssues));
    set.set(prefix + ".units.ldstIssues",
            static_cast<double>(s.ldstIssues));
    set.set(prefix + ".units.sfuBusyCycles",
            static_cast<double>(s.sfuBusyCycles));
    set.set(prefix + ".units.ldstBusyCycles",
            static_cast<double>(s.ldstBusyCycles));

    set.set(prefix + ".sched.activeSizeAccum",
            static_cast<double>(s.activeSizeAccum));
    set.set(prefix + ".sched.activeSizeMax",
            static_cast<double>(s.activeSizeMax));
    set.set(prefix + ".sched.prioritySwitches",
            static_cast<double>(s.prioritySwitches));
    set.set(prefix + ".sched.wakeupRequests",
            static_cast<double>(s.wakeupRequests));

    set.set(prefix + ".mem.hits", static_cast<double>(s.memHits));
    set.set(prefix + ".mem.misses", static_cast<double>(s.memMisses));
    set.set(prefix + ".mem.stores", static_cast<double>(s.memStores));
    set.set(prefix + ".mem.mshrRejects",
            static_cast<double>(s.mshrRejects));

    static const char* kTypeNames[2] = {"int", "fp"};
    for (unsigned t = 0; t < 2; ++t) {
        const std::string p = prefix + ".adaptive." + kTypeNames[t];
        set.set(p + ".finalIdleDetect",
                static_cast<double>(s.finalIdleDetect[t]));
        set.set(p + ".increments",
                static_cast<double>(s.adaptIncrements[t]));
        set.set(p + ".decrements",
                static_cast<double>(s.adaptDecrements[t]));
    }
}

StatSet
toStatSet(const SimResult& r)
{
    StatSet set;

    // The aggregate is an SmStats whose `cycles` is the per-SM sum;
    // correct the headline entries to the result's semantics below.
    appendSmStats(set, "gpu", r.aggregate);
    set.set("gpu.cycles", static_cast<double>(r.cycles));
    set.set("gpu.totalSmCycles", static_cast<double>(r.totalSmCycles));

    set.set("gpu.ipc", r.ipc());
    set.set("gpu.avgActiveWarps", r.aggregate.avgActiveWarps());
    set.set("gpu.numSms", static_cast<double>(r.smCycles.size()));

    // Per-type rollups (both clusters of the type) plus the derived
    // per-figure fractions, so every CSV/JSON export column has a
    // registry twin.
    for (UnitClass uc : {UnitClass::Int, UnitClass::Fp}) {
        const std::string p = std::string("gpu.pg.") +
                              (uc == UnitClass::Int ? "int" : "fp");
        appendPgDomainStats(set, p, r.typeStats(uc));
        double busy_frac = 0.0;
        if (r.totalSmCycles > 0)
            busy_frac = static_cast<double>(r.typeStats(uc).busyCycles) /
                        (2.0 * static_cast<double>(r.totalSmCycles));
        set.set(p + ".busyFraction", busy_frac);
        set.set(p + ".idleFraction", r.idleFraction(uc));
        set.set(p + ".compensatedNetFraction",
                r.compensatedNetFraction(uc));
        set.set(p + ".criticalWakeupsPer1k",
                r.criticalWakeupsPer1k(uc));
    }

    appendUnitEnergy(set, "gpu.energy.int", r.intEnergy);
    appendUnitEnergy(set, "gpu.energy.fp", r.fpEnergy);
    appendUnitEnergy(set, "gpu.energy.sfu", r.sfuEnergy);
    appendUnitEnergy(set, "gpu.energy.ldst", r.ldstEnergy);

    for (std::size_t s = 0; s < r.smCycles.size(); ++s)
        set.set("sm" + std::to_string(s) + ".cycles",
                static_cast<double>(r.smCycles[s]));

    const PgParams& pg = r.config.sm.pg;
    set.set("config.numSms", static_cast<double>(r.config.numSms));
    set.set("config.seed", static_cast<double>(r.config.seed));
    set.set("config.adaptive", pg.adaptiveIdleDetect ? 1.0 : 0.0);
    set.set("config.gateSfu", pg.gateSfu ? 1.0 : 0.0);
    set.set("config.idleDetect", static_cast<double>(pg.idleDetect));
    set.set("config.breakEven", static_cast<double>(pg.breakEven));
    set.set("config.wakeupDelay", static_cast<double>(pg.wakeupDelay));
    set.set("config.epochLength", static_cast<double>(pg.epochLength));
    return set;
}

} // namespace wg::metrics
