#include "compare.hh"

#include <cmath>

#include "metrics/exporters.hh"

namespace wg::metrics {

namespace {

bool
ignored(const std::string& name, const CompareOptions& opts)
{
    for (const std::string& prefix : opts.ignorePrefixes)
        if (name.rfind(prefix, 0) == 0)
            return true;
    return false;
}

double
toleranceFor(const std::string& name, const CompareOptions& opts)
{
    auto it = opts.perMetric.find(name);
    return it == opts.perMetric.end() ? opts.relTol : it->second;
}

} // namespace

CompareReport
compareStatSets(const StatSet& base, const StatSet& test,
                const CompareOptions& opts)
{
    CompareReport report;

    // Union of names in name order: walk base, then test-only names.
    auto examine = [&](const std::string& name) {
        MetricDelta d;
        d.name = name;
        d.onlyInBase = !test.has(name);
        d.onlyInTest = !base.has(name);
        d.base = base.get(name);
        d.test = test.get(name);
        d.delta = d.test - d.base;
        d.rel = d.base != 0.0 ? d.delta / std::fabs(d.base) : 0.0;

        if (d.onlyInBase || d.onlyInTest) {
            // Structural drift: a metric appeared or vanished.
            d.beyondTolerance = true;
        } else if (std::fabs(d.delta) > opts.absTol) {
            double tol = toleranceFor(name, opts);
            d.beyondTolerance = d.base != 0.0
                                    ? std::fabs(d.rel) > tol
                                    : true; // zero baseline moved
        }

        ++report.compared;
        if (d.delta != 0.0 || d.onlyInBase || d.onlyInTest)
            ++report.changed;
        if (d.beyondTolerance)
            ++report.regressions;
        report.deltas.push_back(std::move(d));
    };

    for (const auto& [name, value] : base.entries()) {
        (void)value;
        if (!ignored(name, opts))
            examine(name);
    }
    for (const auto& [name, value] : test.entries()) {
        (void)value;
        if (!base.has(name) && !ignored(name, opts))
            examine(name);
    }
    return report;
}

Table
renderComparison(const CompareReport& report,
                 const std::string& base_label,
                 const std::string& test_label, bool show_all)
{
    Table table("wgreport — " + test_label + " vs " + base_label + " (" +
                std::to_string(report.regressions) + " beyond tolerance, " +
                std::to_string(report.changed) + "/" +
                std::to_string(report.compared) + " changed)");
    table.header({"metric", "base", "test", "delta", "rel", "flag"});
    for (const MetricDelta& d : report.deltas) {
        bool changed = d.delta != 0.0 || d.onlyInBase || d.onlyInTest;
        if (!show_all && !changed)
            continue;
        std::string flag;
        if (d.onlyInBase)
            flag = "MISSING";
        else if (d.onlyInTest)
            flag = "NEW";
        else if (d.beyondTolerance)
            flag = "FAIL";
        std::string rel = d.onlyInBase || d.onlyInTest
                              ? "-"
                              : (d.base != 0.0 ? Table::pct(d.rel, 3)
                                               : "n/a");
        table.row({d.name, formatMetricValue(d.base),
                   formatMetricValue(d.test), formatMetricValue(d.delta),
                   rel, flag});
    }
    return table;
}

} // namespace wg::metrics
