/**
 * @file
 * Conversion of the simulator's statistics structs into the common
 * StatSet registry under stable dotted names.
 *
 * Naming scheme (see DESIGN.md §11):
 *   gpu.cycles, gpu.ipc, gpu.instructions, ...      headline metrics
 *   gpu.issued.{int,fp,sfu,ldst}                    per-class issues
 *   gpu.pg.{int0,int1,fp0,fp1,sfu}.<counter>        per-cluster gating
 *   gpu.pg.{int,fp}.<counter|busyFraction|...>      per-type rollups
 *   gpu.sched.*, gpu.mem.*, gpu.adaptive.{int,fp}.* subsystems
 *   gpu.energy.{int,fp,sfu,ldst}.<ledger>           energy ledgers
 *   sm<N>.cycles                                    per-SM runtimes
 *   config.*                                        numeric run config
 *
 * Names never contain '_' so the Prometheus exposition's '.' -> '_'
 * mapping stays bijective. Everything is enumerable, mergeable
 * (StatSet::merge / mergePrefixed) and exportable without bespoke
 * plumbing per figure.
 */

#pragma once

#include <string>

#include "common/stats.hh"
#include "pg/domain.hh"
#include "power/energymodel.hh"
#include "sim/result.hh"
#include "sim/smstats.hh"

namespace wg::metrics {

/** Add a domain's counters under `<prefix>.<counter>`. */
void appendPgDomainStats(StatSet& set, const std::string& prefix,
                         const PgDomainStats& stats);

/** Add a cluster's gating counters and issue count. */
void appendClusterStats(StatSet& set, const std::string& prefix,
                        const ClusterStats& stats);

/** Add an energy ledger under `<prefix>.<field>J` / ratios. */
void appendUnitEnergy(StatSet& set, const std::string& prefix,
                      const UnitEnergy& energy);

/**
 * Add everything one SM run produced under `<prefix>.`:
 * cycles, issued.*, pg.*, sched.*, mem.*, adaptive.*.
 */
void appendSmStats(StatSet& set, const std::string& prefix,
                   const SmStats& stats);

/**
 * Full registry of one simulation result: the aggregate SmStats under
 * `gpu.` (with gpu.cycles corrected to the wall-clock runtime and
 * gpu.totalSmCycles holding the per-SM sum), per-type rollups, derived
 * figure metrics, energy ledgers, per-SM runtimes, and the numeric
 * configuration under `config.`.
 */
StatSet toStatSet(const SimResult& result);

} // namespace wg::metrics

