/**
 * @file
 * Epoch-resolution metrics sampling.
 *
 * The paper's adaptive idle-detect mechanism works in 1000-cycle
 * epochs; this sampler snapshots the key gating/scheduler/memory
 * counters at exactly those boundaries so a run becomes a compact
 * time-series instead of a single end-of-run aggregate. The SM fills
 * an EpochCounters snapshot from its live counters and the sampler
 * stores the per-epoch deltas.
 *
 * Everything here is header-only on purpose: the SM (wg::sim) drives
 * the sampler from its step loop, while the exporters (wg::metrics)
 * sit above wg::sim — keeping the sampler header-only avoids a link
 * cycle between the two libraries.
 *
 * Concurrency contract (mirrors trace::Collector): the Collector
 * pre-creates one EpochSampler per SM before any pool job is
 * dispatched, each SM touches only its own sampler, and serialisation
 * drains samplers in SM order — so pooled and serial runs produce
 * bit-identical metrics files.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "metrics/phase_timer.hh"

namespace wg::metrics {

/**
 * Cumulative counter snapshot one SM hands to its sampler at an epoch
 * boundary. INT/FP values are summed over both clusters of the type.
 */
struct EpochCounters
{
    std::uint64_t issued = 0;         ///< warp instructions issued

    std::uint64_t intBusyCycles = 0;
    std::uint64_t intGatedCycles = 0; ///< uncompensated + compensated
    std::uint64_t intCompCycles = 0;
    std::uint64_t intGatingEvents = 0;
    std::uint64_t intWakeups = 0;
    std::uint64_t intCriticalWakeups = 0;

    std::uint64_t fpBusyCycles = 0;
    std::uint64_t fpGatedCycles = 0;
    std::uint64_t fpCompCycles = 0;
    std::uint64_t fpGatingEvents = 0;
    std::uint64_t fpWakeups = 0;
    std::uint64_t fpCriticalWakeups = 0;

    std::uint64_t memMisses = 0;
    std::uint64_t mshrRejects = 0;
    std::uint64_t wakeupRequests = 0;
    std::uint64_t activeAccum = 0;    ///< sum of active-set sizes

    Cycle intIdleDetect = 0;          ///< gauge: post-epoch window
    Cycle fpIdleDetect = 0;           ///< gauge: post-epoch window
};

/** One epoch's deltas (gauges excepted) for one SM. */
struct EpochSample
{
    std::uint32_t epoch = 0;  ///< epoch index, 0-based
    Cycle cycleEnd = 0;       ///< cycles completed when sampled
    Cycle cycles = 0;         ///< cycles covered (== epoch length,
                              ///< except a final partial epoch)
    EpochCounters delta;      ///< counter deltas; idle-detect fields
                              ///< are end-of-epoch gauges, not deltas
};

/**
 * Checkpoint state of one EpochSampler: the closed samples plus the
 * open epoch's baseline. epochLength rides along so resume can verify
 * the restored sampler ticks on the same boundaries.
 */
struct SamplerState
{
    Cycle epochLength = 0;           ///< sampling period at capture
    Cycle lastCycle = 0;             ///< last closed boundary
    EpochCounters prev;              ///< cumulative baseline at lastCycle
    std::vector<EpochSample> samples; ///< closed epochs, oldest first
};

/**
 * Bounded single-producer/single-consumer ring. The producer is one SM
 * job thread, the consumer is whoever merges the stream; the two never
 * block each other. Capacity rounds up to a power of two.
 */
template <typename T>
class SpscRing
{
  public:
    explicit SpscRing(std::size_t capacity)
    {
        std::size_t cap = 1;
        while (cap < capacity)
            cap <<= 1;
        slots_.resize(cap);
        mask_ = cap - 1;
    }

    /** Producer side; false (and no write) when the ring is full. */
    bool
    tryPush(const T& v)
    {
        const std::size_t tail = tail_.load(std::memory_order_relaxed);
        const std::size_t head = head_.load(std::memory_order_acquire);
        if (tail - head > mask_)
            return false;
        slots_[tail & mask_] = v;
        tail_.store(tail + 1, std::memory_order_release);
        return true;
    }

    /** Consumer side; false when the ring is empty. */
    bool
    tryPop(T& out)
    {
        const std::size_t head = head_.load(std::memory_order_relaxed);
        const std::size_t tail = tail_.load(std::memory_order_acquire);
        if (head == tail)
            return false;
        out = slots_[head & mask_];
        head_.store(head + 1, std::memory_order_release);
        return true;
    }

  private:
    std::vector<T> slots_;
    std::size_t mask_ = 0;
    std::atomic<std::size_t> head_{0};
    std::atomic<std::size_t> tail_{0};
};

/**
 * Streaming transport between the per-SM samplers and a merger: one
 * SPSC ring per SM, pushed from the SM's job thread as each epoch
 * closes and drained in SM order at the cell boundary. A full ring
 * never blocks the simulation — the push is dropped and counted, and
 * the merger falls back to the sampler's retained vector, which stays
 * authoritative. The streamed series is therefore always bit-identical
 * to the offline one regardless of ring pressure.
 */
class EpochStreamSink
{
  public:
    explicit EpochStreamSink(std::size_t ring_capacity = 4096)
        : ring_capacity_(ring_capacity ? ring_capacity : 1)
    {
    }

    /** Create one empty ring per SM. Not thread-safe. */
    void
    prepare(std::uint32_t num_sms)
    {
        lanes_.clear();
        lanes_.reserve(num_sms);
        for (std::uint32_t s = 0; s < num_sms; ++s)
            lanes_.push_back(std::make_unique<Lane>(ring_capacity_));
    }

    std::uint32_t
    numSms() const
    {
        return static_cast<std::uint32_t>(lanes_.size());
    }

    /** Producer side (SM job thread); drops-and-counts when full. */
    void
    push(SmId sm, const EpochSample& s)
    {
        if (sm >= lanes_.size())
            return;
        Lane& lane = *lanes_[sm];
        if (!lane.ring.tryPush(s))
            lane.overflow.fetch_add(1, std::memory_order_relaxed);
    }

    /** Consumer side; pops the oldest undelivered sample of @p sm. */
    bool
    pop(SmId sm, EpochSample& out)
    {
        if (sm >= lanes_.size())
            return false;
        return lanes_[sm]->ring.tryPop(out);
    }

    /** Samples dropped on push across all SMs. */
    std::uint64_t
    overflows() const
    {
        std::uint64_t n = 0;
        for (const auto& lane : lanes_)
            n += lane->overflow.load(std::memory_order_relaxed);
        return n;
    }

    /** Samples dropped on push for one SM. */
    std::uint64_t
    overflows(SmId sm) const
    {
        if (sm >= lanes_.size())
            return 0;
        return lanes_[sm]->overflow.load(std::memory_order_relaxed);
    }

  private:
    struct Lane
    {
        explicit Lane(std::size_t capacity) : ring(capacity) {}
        SpscRing<EpochSample> ring;
        std::atomic<std::uint64_t> overflow{0};
    };

    std::size_t ring_capacity_;
    std::vector<std::unique_ptr<Lane>> lanes_;
};

/**
 * Per-SM epoch time-series. The SM calls sample() whenever the epoch
 * clock rolls over (the same (now+1) % epochLength == 0 boundary
 * PgController uses for adaptive idle detect) and finalize() once at
 * end of run to flush a trailing partial epoch.
 */
class EpochSampler
{
  public:
    EpochSampler(SmId sm, Cycle epoch_length,
                 EpochStreamSink* sink = nullptr)
        : sm_(sm), epoch_length_(epoch_length ? epoch_length : 1),
          sink_(sink)
    {
    }

    SmId sm() const { return sm_; }
    Cycle epochLength() const { return epoch_length_; }

    /** Close the epoch ending at @p cycle_end (cycles completed). */
    void
    sample(Cycle cycle_end, const EpochCounters& cum)
    {
        EpochSample s;
        s.epoch = static_cast<std::uint32_t>(samples_.size());
        s.cycleEnd = cycle_end;
        s.cycles = cycle_end - last_cycle_;
        s.delta = diff(cum, prev_);
        samples_.push_back(s);
        if (sink_ != nullptr)
            sink_->push(sm_, s);
        prev_ = cum;
        last_cycle_ = cycle_end;
    }

    /**
     * Flush the trailing partial epoch, if any cycles have elapsed
     * since the last boundary. Idempotent for a fixed @p cycle_end.
     */
    void
    finalize(Cycle cycle_end, const EpochCounters& cum)
    {
        if (cycle_end > last_cycle_)
            sample(cycle_end, cum);
    }

    const std::vector<EpochSample>& samples() const { return samples_; }

    /** Capture closed samples + the open epoch's baseline. */
    SamplerState
    saveState() const
    {
        SamplerState s;
        s.epochLength = epoch_length_;
        s.lastCycle = last_cycle_;
        s.prev = prev_;
        s.samples = samples_;
        return s;
    }

    /**
     * Rebuild the sampler from a checkpoint. Restored samples are NOT
     * replayed into an attached stream sink — a resumed run streams
     * only the epochs it simulates itself.
     */
    void
    restoreState(const SamplerState& s)
    {
        last_cycle_ = s.lastCycle;
        prev_ = s.prev;
        samples_ = s.samples;
    }

  private:
    /** Counter deltas @p a - @p b; gauges are taken from @p a. */
    static EpochCounters
    diff(const EpochCounters& a, const EpochCounters& b)
    {
        EpochCounters d;
        d.issued = a.issued - b.issued;
        d.intBusyCycles = a.intBusyCycles - b.intBusyCycles;
        d.intGatedCycles = a.intGatedCycles - b.intGatedCycles;
        d.intCompCycles = a.intCompCycles - b.intCompCycles;
        d.intGatingEvents = a.intGatingEvents - b.intGatingEvents;
        d.intWakeups = a.intWakeups - b.intWakeups;
        d.intCriticalWakeups =
            a.intCriticalWakeups - b.intCriticalWakeups;
        d.fpBusyCycles = a.fpBusyCycles - b.fpBusyCycles;
        d.fpGatedCycles = a.fpGatedCycles - b.fpGatedCycles;
        d.fpCompCycles = a.fpCompCycles - b.fpCompCycles;
        d.fpGatingEvents = a.fpGatingEvents - b.fpGatingEvents;
        d.fpWakeups = a.fpWakeups - b.fpWakeups;
        d.fpCriticalWakeups = a.fpCriticalWakeups - b.fpCriticalWakeups;
        d.memMisses = a.memMisses - b.memMisses;
        d.mshrRejects = a.mshrRejects - b.mshrRejects;
        d.wakeupRequests = a.wakeupRequests - b.wakeupRequests;
        d.activeAccum = a.activeAccum - b.activeAccum;
        d.intIdleDetect = a.intIdleDetect;
        d.fpIdleDetect = a.fpIdleDetect;
        return d;
    }

    SmId sm_;
    Cycle epoch_length_;
    EpochStreamSink* sink_;
    Cycle last_cycle_ = 0;
    EpochCounters prev_;
    std::vector<EpochSample> samples_;
};

/**
 * Owns the per-SM samplers of one metered simulation. The driver
 * (Gpu::runPrograms) calls prepare() before dispatching SM jobs; each
 * job fetches its own sampler with sampler(sm).
 */
class Collector
{
  public:
    /**
     * @param epoch_length sampling period override; 0 takes the
     *        config's adaptive-epoch length at prepare() time.
     */
    explicit Collector(Cycle epoch_length = 0)
        : epoch_override_(epoch_length)
    {
    }

    /**
     * Route every sampled epoch into @p sink as well as the retained
     * per-SM vectors. Must be called before prepare(); the sink must
     * outlive the run.
     */
    void attachSink(EpochStreamSink* sink) { sink_ = sink; }

    /** The attached streaming sink, or null. */
    EpochStreamSink* sink() const { return sink_; }

    /** Create (or re-create) one sampler per SM. Not thread-safe. */
    void
    prepare(std::uint32_t num_sms, Cycle config_epoch_length)
    {
        epoch_length_ = epoch_override_ ? epoch_override_
                                        : config_epoch_length;
        if (epoch_length_ == 0)
            epoch_length_ = 1000;
        if (sink_ != nullptr)
            sink_->prepare(num_sms);
        samplers_.clear();
        samplers_.reserve(num_sms);
        for (std::uint32_t s = 0; s < num_sms; ++s)
            samplers_.push_back(
                std::make_unique<EpochSampler>(s, epoch_length_, sink_));
    }

    /** Sampler of @p sm, or null when not prepared. */
    EpochSampler*
    sampler(SmId sm)
    {
        return sm < samplers_.size() ? samplers_[sm].get() : nullptr;
    }

    const EpochSampler*
    sampler(SmId sm) const
    {
        return sm < samplers_.size() ? samplers_[sm].get() : nullptr;
    }

    std::uint32_t
    numSms() const
    {
        return static_cast<std::uint32_t>(samplers_.size());
    }

    /** Effective sampling period (valid after prepare()). */
    Cycle epochLength() const { return epoch_length_; }

    /** Samples retained across all SMs. */
    std::size_t
    totalSamples() const
    {
        std::size_t n = 0;
        for (const auto& s : samplers_)
            n += s->samples().size();
        return n;
    }

    /**
     * Wall-clock phase timers the driver fills while the collector is
     * attached (workloadGen, simLoop, energyModel, export). Lives here
     * so one handle carries both the deterministic time-series and the
     * non-deterministic self-profile.
     */
    PhaseTimers profile;

  private:
    Cycle epoch_override_;
    Cycle epoch_length_ = 0;
    EpochStreamSink* sink_ = nullptr;
    std::vector<std::unique_ptr<EpochSampler>> samplers_;
};

/**
 * Detached snapshot of a metered run's epoch time-series, in the
 * canonical SM-major order the exporters use. Unlike the Collector it
 * owns its samples, so it can outlive the Gpu/Collector pair and sit
 * in the serve-layer result cache.
 */
struct EpochSeries
{
    Cycle epochLength = 0;
    std::vector<std::vector<EpochSample>> perSm; ///< SM-major
    std::uint64_t ringOverflows = 0; ///< pushes the stream rings missed

    std::uint32_t
    numSms() const
    {
        return static_cast<std::uint32_t>(perSm.size());
    }

    std::size_t
    totalSamples() const
    {
        std::size_t n = 0;
        for (const auto& v : perSm)
            n += v.size();
        return n;
    }
};

/**
 * Merge a finished run's stream into an EpochSeries, SM-major. Call
 * after every SM job has completed (the cell boundary). When the
 * collector carries a stream sink the samples are drained from its
 * rings; a lane that overflowed (or drained short) is rebuilt from the
 * sampler's retained vector, so the result is bit-identical either
 * way and ringOverflows records how often the fallback fired.
 */
inline EpochSeries
buildSeries(const Collector& collector)
{
    EpochSeries series;
    series.epochLength = collector.epochLength();
    series.perSm.resize(collector.numSms());
    EpochStreamSink* sink = collector.sink();
    for (std::uint32_t s = 0; s < collector.numSms(); ++s) {
        const EpochSampler* sampler = collector.sampler(s);
        std::vector<EpochSample>& out = series.perSm[s];
        if (sink != nullptr) {
            EpochSample sample;
            while (sink->pop(s, sample))
                out.push_back(sample);
            const std::uint64_t missed = sink->overflows(s);
            if (missed == 0 && out.size() == sampler->samples().size())
                continue;
            series.ringOverflows += missed ? missed : 1;
        }
        out = sampler->samples();
    }
    return series;
}

} // namespace wg::metrics

