/**
 * @file
 * Metrics serialisation: the final StatSet registry and the per-SM
 * epoch time-series, in three formats.
 *
 *   - prom  — OpenMetrics/Prometheus text exposition of the final
 *             registry only (`wg_` prefix, '.' -> '_', `# EOF`).
 *   - jsonl — one meta line, one flat JSON object per epoch sample,
 *             then a `{"type":"final","stats":{...}}` registry line.
 *             The lossless machine format wgreport consumes.
 *   - csv   — `# wgmetrics` header, the epoch series as rows, then a
 *             `# final` section of name,value registry lines.
 *
 * All exporters drain samplers in ascending SM order and samples in
 * epoch order, and format numbers deterministically (integers exactly,
 * doubles with round-trip precision), so output depends only on the
 * simulated work — a pooled run's file is byte-identical to the serial
 * run's.
 */

#pragma once

#include <iosfwd>
#include <string>

#include "common/stats.hh"
#include "metrics/sampler.hh"

namespace wg::metrics {

/** Serialisation formats (the --metrics-format spellings). */
enum class MetricsFormat : std::uint8_t { Csv, Jsonl, Prom };

/** Printable format name. */
const char* metricsFormatName(MetricsFormat format);

/** Parse a --metrics-format value. @return false when unknown. */
bool parseMetricsFormat(const std::string& name, MetricsFormat& out);

/**
 * Deterministic number formatting: integral values (|v| < 2^53) print
 * without a decimal point, everything else with round-trip (%.17g)
 * precision, so load(export(set)) == set exactly.
 */
std::string formatMetricValue(double value);

/**
 * Serialise @p set (and, for csv/jsonl, @p collector's epoch series)
 * to @p os. @p collector may be null: csv/jsonl then carry the final
 * registry only.
 */
void writeMetrics(std::ostream& os, const Collector* collector,
                  const StatSet& set, MetricsFormat format);

/** OpenMetrics text exposition of the registry (no series). */
void writeProm(std::ostream& os, const StatSet& set);

/** JSONL: meta, epoch samples, final registry. */
void writeMetricsJsonl(std::ostream& os, const Collector* collector,
                       const StatSet& set);

/** CSV: epoch-series rows plus a `# final` registry section. */
void writeMetricsCsv(std::ostream& os, const Collector* collector,
                     const StatSet& set);

/** Serialise to @p path; fatal() on I/O failure. */
void writeMetricsFile(const std::string& path,
                      const Collector* collector, const StatSet& set,
                      MetricsFormat format);

/** Registry name -> Prometheus sample name (`wg_` + '.' -> '_'). */
std::string promName(const std::string& name);

} // namespace wg::metrics

