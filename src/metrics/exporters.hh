/**
 * @file
 * Metrics serialisation: the final StatSet registry and the per-SM
 * epoch time-series, in three formats.
 *
 *   - prom  — OpenMetrics/Prometheus text exposition of the final
 *             registry only (`wg_` prefix, '.' -> '_', `# EOF`).
 *   - jsonl — one meta line, one flat JSON object per epoch sample,
 *             then a `{"type":"final","stats":{...}}` registry line.
 *             The lossless machine format wgreport consumes.
 *   - csv   — `# wgmetrics` header, the epoch series as rows, then a
 *             `# final` section of name,value registry lines.
 *
 * All exporters drain samplers in ascending SM order and samples in
 * epoch order, and format numbers deterministically (integers exactly,
 * doubles with round-trip precision), so output depends only on the
 * simulated work — a pooled run's file is byte-identical to the serial
 * run's.
 */

#pragma once

#include <iosfwd>
#include <string>

#include "common/histogram.hh"
#include "common/stats.hh"
#include "metrics/sampler.hh"

namespace wg::metrics {

/** Serialisation formats (the --metrics-format spellings). */
enum class MetricsFormat : std::uint8_t { Csv, Jsonl, Prom };

/** Printable format name. */
const char* metricsFormatName(MetricsFormat format);

/** Parse a --metrics-format value. @return false when unknown. */
bool parseMetricsFormat(const std::string& name, MetricsFormat& out);

/**
 * Deterministic number formatting: integral values (|v| < 2^53) print
 * without a decimal point, everything else with round-trip (%.17g)
 * precision, so load(export(set)) == set exactly.
 */
std::string formatMetricValue(double value);

/**
 * Serialise @p set (and, for csv/jsonl, @p collector's epoch series)
 * to @p os. @p collector may be null: csv/jsonl then carry the final
 * registry only.
 */
void writeMetrics(std::ostream& os, const Collector* collector,
                  const StatSet& set, MetricsFormat format);

/** OpenMetrics text exposition of the registry (no series). */
void writeProm(std::ostream& os, const StatSet& set);

/**
 * The gauge section of the exposition (`# HELP`/`# TYPE`/sample per
 * metric) without the `# EOF` terminator, so callers can append
 * histogram families before closing the stream themselves.
 */
void writePromGauges(std::ostream& os, const StatSet& set);

/**
 * One OpenMetrics histogram family: cumulative `_bucket{le="..."}`
 * samples (including the implicit `+Inf`), then `_sum` and `_count`.
 * @p name is a dotted registry name, mapped through promName().
 */
void writePromHistogram(std::ostream& os, const std::string& name,
                        const std::string& help,
                        const LatencyHistogram& hist);

/**
 * Help text for a registry metric, looked up by longest catalogued
 * dotted-prefix. Uncatalogued names get a generic fallback (see
 * metricHelpKnown, which the schema-drift guard uses to force new
 * namespaces into the catalogue).
 */
std::string metricHelp(const std::string& name);

/** True when metricHelp() found a catalogued (non-generic) entry. */
bool metricHelpKnown(const std::string& name);

/** JSONL: meta, epoch samples, final registry. */
void writeMetricsJsonl(std::ostream& os, const Collector* collector,
                       const StatSet& set);

/**
 * The individual wgmetrics-jsonl lines (no trailing newline). These
 * are the single source of the format's bytes: writeMetricsJsonl
 * concatenates them, and the serve layer embeds them verbatim in
 * stream frames — which is what makes a watched job's stream
 * byte-identical to the offline export by construction.
 */
std::string jsonlMetaLine(bool have_series, Cycle epoch_length,
                          std::uint32_t num_sms);
std::string jsonlEpochLine(SmId sm, const EpochSample& s);
std::string jsonlFinalLine(const StatSet& set);

/** CSV: epoch-series rows plus a `# final` registry section. */
void writeMetricsCsv(std::ostream& os, const Collector* collector,
                     const StatSet& set);

/** Serialise to @p path; fatal() on I/O failure. */
void writeMetricsFile(const std::string& path,
                      const Collector* collector, const StatSet& set,
                      MetricsFormat format);

/** Registry name -> Prometheus sample name (`wg_` + '.' -> '_'). */
std::string promName(const std::string& name);

} // namespace wg::metrics

