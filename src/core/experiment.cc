#include "experiment.hh"

#include <sstream>

#include "common/logging.hh"

namespace wg {

ExperimentRunner::ExperimentRunner(const ExperimentOptions& opts,
                                   ThreadPool* pool)
    : opts_(opts), pool_(pool)
{
}

std::string
ExperimentRunner::key(const std::string& bench, Technique t,
                      const ExperimentOptions& opts)
{
    std::ostringstream os;
    os << bench << '/' << techniqueName(t) << '/' << opts.numSms << '/'
       << opts.seed << '/' << opts.idleDetect << '/' << opts.breakEven
       << '/' << opts.wakeupDelay;
    return os.str();
}

namespace {

/** Approximate heap footprint of a cached result (for CacheLimits). */
std::size_t
approximateResultBytes(const SimResult& r)
{
    auto histBytes = [](const Histogram& h) {
        return (h.maxBin() + 1) * sizeof(std::uint64_t);
    };
    std::size_t bytes = sizeof(SimResult);
    bytes += r.smCycles.capacity() * sizeof(Cycle);
    bytes += histBytes(r.intIdleHist) + histBytes(r.fpIdleHist);
    for (const auto& type : r.aggregate.clusters)
        for (const auto& cluster : type)
            bytes += histBytes(cluster.idleHist);
    bytes += histBytes(r.aggregate.sfuCluster.idleHist);
    return bytes;
}

} // namespace

const SimResult&
ExperimentRunner::run(const std::string& bench, Technique t,
                      const std::optional<ExperimentOptions>& options)
{
    // Pinning keeps the historical contract — references returned here
    // stay valid for the runner's lifetime — even when cache limits
    // are active. Long-running services should prefer runShared().
    return *runInternal(bench, t, options, /*pin=*/true,
                        /*meter=*/false, nullptr);
}

std::shared_ptr<const SimResult>
ExperimentRunner::runShared(
    const std::string& bench, Technique t,
    const std::optional<ExperimentOptions>& options)
{
    return runInternal(bench, t, options, /*pin=*/false,
                       /*meter=*/false, nullptr);
}

MeteredResult
ExperimentRunner::runMetered(
    const std::string& bench, Technique t,
    const std::optional<ExperimentOptions>& options)
{
    MeteredResult out;
    out.result = runInternal(bench, t, options, /*pin=*/false,
                             /*meter=*/true, &out.series);
    return out;
}

std::shared_ptr<const SimResult>
ExperimentRunner::runInternal(
    const std::string& bench, Technique t,
    const std::optional<ExperimentOptions>& options, bool pin,
    bool meter, std::shared_ptr<const metrics::EpochSeries>* series_out)
{
    const ExperimentOptions& opts = options ? *options : opts_;
    std::string k = key(bench, t, opts);

    {
        // Reject invalid configurations up front, with every message:
        // a bad sweep point (say, an inverted adaptive window) should
        // abort here, not simulate for minutes and report garbage.
        GpuConfig config = makeConfig(t, opts);
        std::vector<std::string> errors = config.validate();
        if (!errors.empty()) {
            std::ostringstream os;
            for (const std::string& e : errors)
                os << "\n  - " << e;
            fatal("experiment ", k, ": invalid configuration:", os.str());
        }
    }

    MutexLock lock(mu_);
    auto [it, inserted] = cache_.try_emplace(k);
    CacheEntry& entry = it->second;
    if (!inserted) {
        // Single-flight: the owner computes on its own thread (never
        // parked in a pool queue), so waiting here cannot deadlock.
        // The entry reference stays valid while we wait: in-flight and
        // waited-on entries are never evicted (map nodes are stable).
        ++stats_.hits;
        // The waiter count keeps this node safe from eviction between
        // the owner's notify and this thread actually waking up.
        ++entry.waiters;
        while (!entry.ready)
            ready_cv_.wait(lock);
        --entry.waiters;
        if (entry.truncated)
            warn("experiment ", k,
                 " hit maxCycles before draining (cached result is "
                 "incomplete)");
        entry.pinned = entry.pinned || pin;
        entry.lastUse = ++use_tick_;
        if (series_out != nullptr)
            *series_out = entry.series;
        return entry.result;
    }
    ++stats_.misses;
    ++stats_.inFlight;
    lock.unlock();

    const BenchmarkProfile& profile = findBenchmark(bench);
    Gpu gpu(makeConfig(t, opts));
    // Metering is passive: the sampler only reads counters, so the
    // SimResult is bit-identical with or without the collector. The
    // stream sink exercises the live SPSC path; buildSeries() merges
    // it SM-major at this cell boundary.
    metrics::EpochStreamSink sink;
    metrics::Collector collector;
    if (meter)
        collector.attachSink(&sink);
    SimResult result =
        gpu.run(profile, pool_, nullptr, meter ? &collector : nullptr);
    std::shared_ptr<const metrics::EpochSeries> series;
    if (meter) {
        series = std::make_shared<const metrics::EpochSeries>(
            metrics::buildSeries(collector));
    }
    bool truncated = !result.aggregate.completed;
    if (truncated)
        warn("experiment ", k, " hit maxCycles before draining");

    lock.relock();
    entry.result = std::make_shared<SimResult>(std::move(result));
    entry.series = series;
    entry.truncated = truncated;
    entry.pinned = pin;
    entry.lastUse = ++use_tick_;
    entry.bytes = approximateResultBytes(*entry.result);
    if (series) {
        entry.bytes += series->totalSamples() * sizeof(metrics::EpochSample) +
                       series->perSm.capacity() *
                           sizeof(std::vector<metrics::EpochSample>);
    }
    entry.ready = true;
    --stats_.inFlight;
    ++stats_.entries;
    stats_.bytes += entry.bytes;
    std::shared_ptr<const SimResult> out = entry.result;
    if (series_out != nullptr)
        *series_out = entry.series;
    enforceLimitsLocked();
    lock.unlock();
    ready_cv_.notifyAll();
    return out;
}

void
ExperimentRunner::enforceLimitsLocked()
{
    // Condition inlined (not a lambda): clang's thread-safety analysis
    // treats a lambda as a separate function that cannot see mu_ held.
    while ((limits_.maxEntries != 0 &&
            stats_.entries > limits_.maxEntries) ||
           (limits_.maxBytes != 0 && stats_.bytes > limits_.maxBytes)) {
        // LRU scan. The map stays small (it is capped); a heap would
        // only complicate the pinned/in-flight exclusions.
        auto victim = cache_.end();
        for (auto it = cache_.begin(); it != cache_.end(); ++it) {
            const CacheEntry& e = it->second;
            if (!e.ready || e.pinned || e.waiters != 0)
                continue; // never race an in-flight compute or a ref
            if (victim == cache_.end() ||
                e.lastUse < victim->second.lastUse)
                victim = it;
        }
        if (victim == cache_.end())
            return; // everything left is in-flight or pinned
        ++stats_.evictions;
        stats_.evictedBytes += victim->second.bytes;
        stats_.bytes -= victim->second.bytes;
        --stats_.entries;
        cache_.erase(victim);
    }
}

bool
ExperimentRunner::seedCache(
    const std::string& bench, Technique t,
    const std::optional<ExperimentOptions>& options, SimResult result)
{
    const ExperimentOptions& opts = options ? *options : opts_;
    const std::string k = key(bench, t, opts);
    MutexLock lock(mu_);
    auto [it, inserted] = cache_.try_emplace(k);
    if (!inserted)
        return false; // computed (or computing) locally; keep that
    CacheEntry& entry = it->second;
    entry.result = std::make_shared<SimResult>(std::move(result));
    entry.truncated = !entry.result->aggregate.completed;
    entry.lastUse = ++use_tick_;
    entry.bytes = approximateResultBytes(*entry.result);
    entry.ready = true;
    ++stats_.entries;
    stats_.bytes += entry.bytes;
    enforceLimitsLocked();
    return true;
}

void
ExperimentRunner::setCacheLimits(const CacheLimits& limits)
{
    MutexLock lock(mu_);
    limits_ = limits;
    enforceLimitsLocked();
}

CacheStats
ExperimentRunner::cacheStats() const
{
    MutexLock lock(mu_);
    return stats_;
}

std::vector<const SimResult*>
ExperimentRunner::runAll(const SweepSpec& spec)
{
    std::vector<const SimResult*> out(
        spec.benches.size() * spec.techniques.size(), nullptr);
    if (pool_ == nullptr) {
        std::size_t i = 0;
        for (const std::string& bench : spec.benches)
            for (Technique t : spec.techniques)
                out[i++] = &run(bench, t, spec.options);
        return out;
    }

    // One pool job per simulation. Each job may itself fan per-SM jobs
    // into the same pool; submit() + wait() helping keeps that
    // deadlock-free, and the cache's single-flight keeps duplicate
    // keys (and concurrent external run() calls) from running twice.
    std::vector<std::future<const SimResult*>> futures;
    futures.reserve(out.size());
    for (const std::string& bench : spec.benches)
        for (Technique t : spec.techniques)
            futures.push_back(pool_->submit([this, bench, t, &spec] {
                return &run(bench, t, spec.options);
            }));
    for (std::size_t i = 0; i < futures.size(); ++i)
        out[i] = pool_->wait(futures[i]);
    return out;
}

std::vector<std::shared_ptr<const SimResult>>
ExperimentRunner::runAllShared(const SweepSpec& spec)
{
    std::vector<std::shared_ptr<const SimResult>> out;
    out.reserve(spec.benches.size() * spec.techniques.size());
    if (pool_ == nullptr) {
        for (const std::string& bench : spec.benches)
            for (Technique t : spec.techniques)
                out.push_back(runShared(bench, t, spec.options));
        return out;
    }
    std::vector<std::future<std::shared_ptr<const SimResult>>> futures;
    futures.reserve(spec.benches.size() * spec.techniques.size());
    for (const std::string& bench : spec.benches)
        for (Technique t : spec.techniques)
            futures.push_back(pool_->submit([this, bench, t, &spec] {
                return runShared(bench, t, spec.options);
            }));
    for (auto& f : futures)
        out.push_back(pool_->wait(f));
    return out;
}

void
ExperimentRunner::prefetch(const SweepSpec& spec)
{
    runAll(spec);
}

std::vector<std::string>
ExperimentRunner::fpBenchmarks()
{
    std::vector<std::string> out;
    for (const auto& p : benchmarkSuite())
        if (!p.isIntegerOnly())
            out.push_back(p.name);
    return out;
}

double
normalizedRuntime(const SimResult& r, const SimResult& baseline)
{
    if (baseline.cycles == 0)
        return 0.0;
    return static_cast<double>(r.cycles) /
           static_cast<double>(baseline.cycles);
}

} // namespace wg
