#include "experiment.hh"

#include <sstream>

#include "common/logging.hh"

namespace wg {

ExperimentRunner::ExperimentRunner(const ExperimentOptions& opts,
                                   ThreadPool* pool)
    : opts_(opts), pool_(pool)
{
}

std::string
ExperimentRunner::key(const std::string& bench, Technique t,
                      const ExperimentOptions& opts)
{
    std::ostringstream os;
    os << bench << '/' << techniqueName(t) << '/' << opts.numSms << '/'
       << opts.seed << '/' << opts.idleDetect << '/' << opts.breakEven
       << '/' << opts.wakeupDelay;
    return os.str();
}

const SimResult&
ExperimentRunner::run(const std::string& bench, Technique t,
                      const std::optional<ExperimentOptions>& options)
{
    const ExperimentOptions& opts = options ? *options : opts_;
    std::string k = key(bench, t, opts);

    {
        // Reject invalid configurations up front, with every message:
        // a bad sweep point (say, an inverted adaptive window) should
        // abort here, not simulate for minutes and report garbage.
        GpuConfig config = makeConfig(t, opts);
        std::vector<std::string> errors = config.validate();
        if (!errors.empty()) {
            std::ostringstream os;
            for (const std::string& e : errors)
                os << "\n  - " << e;
            fatal("experiment ", k, ": invalid configuration:", os.str());
        }
    }

    std::unique_lock<std::mutex> lock(mu_);
    auto [it, inserted] = cache_.try_emplace(k);
    CacheEntry& entry = it->second;
    if (!inserted) {
        // Single-flight: the owner computes on its own thread (never
        // parked in a pool queue), so waiting here cannot deadlock.
        ready_cv_.wait(lock, [&entry] { return entry.ready; });
        if (entry.truncated)
            warn("experiment ", k,
                 " hit maxCycles before draining (cached result is "
                 "incomplete)");
        return entry.result;
    }
    lock.unlock();

    const BenchmarkProfile& profile = findBenchmark(bench);
    Gpu gpu(makeConfig(t, opts));
    SimResult result = gpu.run(profile, pool_);
    bool truncated = !result.aggregate.completed;
    if (truncated)
        warn("experiment ", k, " hit maxCycles before draining");

    lock.lock();
    entry.result = std::move(result);
    entry.truncated = truncated;
    entry.ready = true;
    lock.unlock();
    ready_cv_.notify_all();
    return entry.result;
}

std::vector<const SimResult*>
ExperimentRunner::runAll(const SweepSpec& spec)
{
    std::vector<const SimResult*> out(
        spec.benches.size() * spec.techniques.size(), nullptr);
    if (pool_ == nullptr) {
        std::size_t i = 0;
        for (const std::string& bench : spec.benches)
            for (Technique t : spec.techniques)
                out[i++] = &run(bench, t, spec.options);
        return out;
    }

    // One pool job per simulation. Each job may itself fan per-SM jobs
    // into the same pool; submit() + wait() helping keeps that
    // deadlock-free, and the cache's single-flight keeps duplicate
    // keys (and concurrent external run() calls) from running twice.
    std::vector<std::future<const SimResult*>> futures;
    futures.reserve(out.size());
    for (const std::string& bench : spec.benches)
        for (Technique t : spec.techniques)
            futures.push_back(pool_->submit([this, bench, t, &spec] {
                return &run(bench, t, spec.options);
            }));
    for (std::size_t i = 0; i < futures.size(); ++i)
        out[i] = pool_->wait(futures[i]);
    return out;
}

void
ExperimentRunner::prefetch(const SweepSpec& spec)
{
    runAll(spec);
}

std::vector<std::string>
ExperimentRunner::fpBenchmarks()
{
    std::vector<std::string> out;
    for (const auto& p : benchmarkSuite())
        if (!p.isIntegerOnly())
            out.push_back(p.name);
    return out;
}

double
normalizedRuntime(const SimResult& r, const SimResult& baseline)
{
    if (baseline.cycles == 0)
        return 0.0;
    return static_cast<double>(r.cycles) /
           static_cast<double>(baseline.cycles);
}

} // namespace wg
