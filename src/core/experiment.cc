#include "experiment.hh"

#include <sstream>

#include "common/logging.hh"

namespace wg {

ExperimentRunner::ExperimentRunner(const ExperimentOptions& opts)
    : opts_(opts)
{
}

std::string
ExperimentRunner::key(const std::string& bench, Technique t,
                      const ExperimentOptions& opts)
{
    std::ostringstream os;
    os << bench << '/' << techniqueName(t) << '/' << opts.numSms << '/'
       << opts.seed << '/' << opts.idleDetect << '/' << opts.breakEven
       << '/' << opts.wakeupDelay;
    return os.str();
}

const SimResult&
ExperimentRunner::run(const std::string& bench, Technique t)
{
    return run(bench, t, opts_);
}

const SimResult&
ExperimentRunner::run(const std::string& bench, Technique t,
                      const ExperimentOptions& opts)
{
    std::string k = key(bench, t, opts);
    auto it = cache_.find(k);
    if (it != cache_.end())
        return it->second;

    const BenchmarkProfile& profile = findBenchmark(bench);
    Gpu gpu(makeConfig(t, opts));
    SimResult result = gpu.run(profile);
    if (!result.aggregate.completed)
        warn("experiment ", k, " hit maxCycles before draining");
    auto [pos, inserted] = cache_.emplace(k, std::move(result));
    (void)inserted;
    return pos->second;
}

std::vector<std::string>
ExperimentRunner::fpBenchmarks()
{
    std::vector<std::string> out;
    for (const auto& p : benchmarkSuite())
        if (!p.isIntegerOnly())
            out.push_back(p.name);
    return out;
}

double
normalizedRuntime(const SimResult& r, const SimResult& baseline)
{
    if (baseline.cycles == 0)
        return 0.0;
    return static_cast<double>(r.cycles) /
           static_cast<double>(baseline.cycles);
}

} // namespace wg
