#include "presets.hh"

#include "common/logging.hh"

namespace wg {

const char*
techniqueName(Technique t)
{
    switch (t) {
      case Technique::Baseline: return "Baseline";
      case Technique::ConvPG: return "ConvPG";
      case Technique::Gates: return "GATES";
      case Technique::NaiveBlackout: return "NaiveBlackout";
      case Technique::CoordinatedBlackout: return "CoordBlackout";
      case Technique::WarpedGates: return "WarpedGates";
    }
    return "?";
}

const std::vector<Technique>&
allTechniques()
{
    static const std::vector<Technique> all = {
        Technique::Baseline,        Technique::ConvPG,
        Technique::Gates,           Technique::NaiveBlackout,
        Technique::CoordinatedBlackout, Technique::WarpedGates,
    };
    return all;
}

GpuConfig
makeConfig(Technique t, const ExperimentOptions& opts)
{
    GpuConfig config;
    config.numSms = opts.numSms;
    config.seed = opts.seed;

    SmConfig& sm = config.sm;
    sm.pg.idleDetect = opts.idleDetect;
    sm.pg.breakEven = opts.breakEven;
    sm.pg.wakeupDelay = opts.wakeupDelay;

    switch (t) {
      case Technique::Baseline:
        sm.scheduler = SchedulerPolicy::TwoLevel;
        sm.pg.policy = PgPolicy::None;
        break;
      case Technique::ConvPG:
        sm.scheduler = SchedulerPolicy::TwoLevel;
        sm.pg.policy = PgPolicy::Conventional;
        break;
      case Technique::Gates:
        sm.scheduler = SchedulerPolicy::Gates;
        sm.pg.policy = PgPolicy::Conventional;
        break;
      case Technique::NaiveBlackout:
        sm.scheduler = SchedulerPolicy::Gates;
        sm.pg.policy = PgPolicy::NaiveBlackout;
        break;
      case Technique::CoordinatedBlackout:
        sm.scheduler = SchedulerPolicy::Gates;
        sm.pg.policy = PgPolicy::CoordinatedBlackout;
        break;
      case Technique::WarpedGates:
        sm.scheduler = SchedulerPolicy::Gates;
        sm.pg.policy = PgPolicy::CoordinatedBlackout;
        sm.pg.adaptiveIdleDetect = true;
        break;
    }
    return config;
}

} // namespace wg
