/**
 * @file
 * Experiment runner: the entry point the benches, examples and
 * integration tests share. Runs (benchmark x technique) simulations
 * and provides suite-level helpers (normalisation against baselines,
 * FP-benchmark filtering, result caching within one process).
 *
 * The runner is thread-safe. Results are cached behind a mutex with
 * single-flight semantics: two threads asking for the same key run the
 * simulation once, the second blocks until the first finishes. The
 * batch API (runAll / prefetch) schedules whole simulations
 * concurrently on the shared thread pool, so a figure sweep keeps
 * every core busy instead of running dozens of simulations serially.
 */

#pragma once

#include <condition_variable>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/threadpool.hh"
#include "core/presets.hh"
#include "sim/gpu.hh"
#include "workload/profile.hh"

namespace wg {

/**
 * One sweep: the (benches x techniques) cross product, optionally under
 * explicit experiment options. This is the single value the batch APIs
 * take — it replaces the old with/without-options overload pairs.
 */
struct SweepSpec
{
    /** @param options options for every cell; nullopt = the runner's
     *         defaults. */
    SweepSpec(std::vector<std::string> benches,
              std::vector<Technique> techniques,
              std::optional<ExperimentOptions> options = std::nullopt)
        : benches(std::move(benches)), techniques(std::move(techniques)),
          options(std::move(options))
    {
    }

    std::vector<std::string> benches;
    std::vector<Technique> techniques;
    std::optional<ExperimentOptions> options;
};

/** Runs simulations and caches results keyed by (bench, config). */
class ExperimentRunner
{
  public:
    /**
     * @param pool pool for per-SM jobs and batch scheduling; nullptr
     *        runs everything serially on the calling thread (results
     *        are bit-identical to the pooled path).
     */
    explicit ExperimentRunner(const ExperimentOptions& opts = {},
                              ThreadPool* pool = &ThreadPool::global());

    /**
     * Run one benchmark under one technique (cached, single-flight).
     * @param options explicit options for this cell; nullopt = the
     *        runner's defaults. The derived GpuConfig is validated
     *        first; an invalid configuration aborts with every
     *        validation message rather than simulating nonsense.
     */
    const SimResult&
    run(const std::string& bench, Technique t,
        const std::optional<ExperimentOptions>& options = std::nullopt);

    /**
     * Run @p spec's full (benches x techniques) cross product
     * concurrently on the pool. Returns results in bench-major order:
     * out[b * techniques.size() + t]. Cached entries are reused; the
     * rest run as parallel pool jobs.
     */
    std::vector<const SimResult*> runAll(const SweepSpec& spec);

    /**
     * Warm the cache for @p spec concurrently; later run() calls hit
     * the cache. Sugar for discarding runAll's result.
     */
    void prefetch(const SweepSpec& spec);

    /** Benchmarks with meaningful FP activity (paper Fig. 9b filter). */
    static std::vector<std::string> fpBenchmarks();

    const ExperimentOptions& options() const { return opts_; }

    /** The pool batch jobs are scheduled on (nullptr = serial). */
    ThreadPool* pool() const { return pool_; }

  private:
    /**
     * A cache slot. Lives in a node-based map, so the SimResult
     * reference stays valid while other threads mutate the cache.
     */
    struct CacheEntry
    {
        SimResult result;
        bool ready = false;     ///< single-flight: owner still running
        bool truncated = false; ///< hit maxCycles; re-warn on every hit
    };

    static std::string key(const std::string& bench, Technique t,
                           const ExperimentOptions& opts);

    ExperimentOptions opts_;
    ThreadPool* pool_;
    std::mutex mu_;
    std::condition_variable ready_cv_;
    std::map<std::string, CacheEntry> cache_;
};

/**
 * Runtime of @p r normalised to @p baseline (>1 = slower). The paper's
 * Fig. 10 plots the inverse (normalised performance); use
 * 1/normalizedRuntime for that.
 */
double normalizedRuntime(const SimResult& r, const SimResult& baseline);

} // namespace wg

