/**
 * @file
 * Experiment runner: the entry point the benches, examples and
 * integration tests share. Runs (benchmark x technique) simulations
 * and provides suite-level helpers (normalisation against baselines,
 * FP-benchmark filtering, result caching within one process).
 *
 * The runner is thread-safe. Results are cached behind a mutex with
 * single-flight semantics: two threads asking for the same key run the
 * simulation once, the second blocks until the first finishes. The
 * batch API (runAll / prefetch) schedules whole simulations
 * concurrently on the shared thread pool, so a figure sweep keeps
 * every core busy instead of running dozens of simulations serially.
 */

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_annotations.hh"
#include "common/threadpool.hh"
#include "core/presets.hh"
#include "metrics/sampler.hh"
#include "sim/gpu.hh"
#include "workload/profile.hh"

namespace wg {

/**
 * One sweep: the (benches x techniques) cross product, optionally under
 * explicit experiment options. This is the single value the batch APIs
 * take — it replaces the old with/without-options overload pairs.
 */
struct SweepSpec
{
    /** @param options options for every cell; nullopt = the runner's
     *         defaults. */
    SweepSpec(std::vector<std::string> benches,
              std::vector<Technique> techniques,
              std::optional<ExperimentOptions> options = std::nullopt)
        : benches(std::move(benches)), techniques(std::move(techniques)),
          options(std::move(options))
    {
    }

    std::vector<std::string> benches;
    std::vector<Technique> techniques;
    std::optional<ExperimentOptions> options;
};

/**
 * Result-cache bounds. Zero means unlimited (the default — references
 * returned by run()/runAll() then stay valid for the runner's
 * lifetime, as they always have). A long-running daemon sets caps so
 * thousands of distinct configs cannot grow the cache without limit.
 */
struct CacheLimits
{
    std::size_t maxEntries = 0; ///< 0 = unlimited
    std::size_t maxBytes = 0;   ///< approximate result bytes; 0 = unlimited
};

/** Cache-behaviour counters (sampled under the cache lock). */
struct CacheStats
{
    std::uint64_t hits = 0;      ///< served from a ready entry
    std::uint64_t misses = 0;    ///< triggered a simulation
    std::uint64_t evictions = 0; ///< entries LRU-evicted
    std::uint64_t evictedBytes = 0;
    std::uint64_t entries = 0;   ///< current cached entries
    std::uint64_t bytes = 0;     ///< current approximate bytes
    std::uint64_t inFlight = 0;  ///< entries still computing
};

/**
 * A metered cell: the simulation result plus its per-epoch
 * time-series. `series` is null when the cached entry was computed by
 * an earlier unmetered call — metering happens on cache miss, it never
 * re-runs a cached cell.
 */
struct MeteredResult
{
    std::shared_ptr<const SimResult> result;
    std::shared_ptr<const metrics::EpochSeries> series;
};

/** Runs simulations and caches results keyed by (bench, config). */
class ExperimentRunner
{
  public:
    /**
     * @param pool pool for per-SM jobs and batch scheduling; nullptr
     *        runs everything serially on the calling thread (results
     *        are bit-identical to the pooled path).
     */
    explicit ExperimentRunner(const ExperimentOptions& opts = {},
                              ThreadPool* pool = &ThreadPool::global());

    /**
     * Run one benchmark under one technique (cached, single-flight).
     * @param options explicit options for this cell; nullopt = the
     *        runner's defaults. The derived GpuConfig is validated
     *        first; an invalid configuration aborts with every
     *        validation message rather than simulating nonsense.
     */
    const SimResult&
    run(const std::string& bench, Technique t,
        const std::optional<ExperimentOptions>& options = std::nullopt);

    /**
     * run() returning shared ownership of the cached result. This is
     * the API to use when cache limits are set: the returned pointer
     * keeps the result alive even after the entry is LRU-evicted,
     * where a run() reference would only survive because run() pins
     * its entry against eviction forever.
     */
    std::shared_ptr<const SimResult>
    runShared(const std::string& bench, Technique t,
              const std::optional<ExperimentOptions>& options =
                  std::nullopt);

    /**
     * runShared() with an attached metrics::Collector (streamed
     * through an EpochStreamSink, merged SM-major at the cell
     * boundary), so the caller also gets the cell's epoch time-series.
     * Metering is passive — the SimResult is bit-identical to an
     * unmetered run — and the series is cached with the result, so a
     * cache hit returns the series without re-running. The series is
     * null only when the entry was first computed unmetered.
     */
    MeteredResult
    runMetered(const std::string& bench, Technique t,
               const std::optional<ExperimentOptions>& options =
                   std::nullopt);

    /**
     * Run @p spec's full (benches x techniques) cross product
     * concurrently on the pool. Returns results in bench-major order:
     * out[b * techniques.size() + t]. Cached entries are reused; the
     * rest run as parallel pool jobs.
     */
    std::vector<const SimResult*> runAll(const SweepSpec& spec);

    /** runAll() with shared ownership (see runShared()). */
    std::vector<std::shared_ptr<const SimResult>>
    runAllShared(const SweepSpec& spec);

    /**
     * Seed the cache with an externally computed result — the
     * checkpoint/resume path: a resubmitted job snapshot feeds its
     * already-finished cells in here so the runner never recomputes
     * them. The result is trusted to be what a local run would have
     * produced (snapshot documents are as trusted as the offline jsonl
     * files wgreport reads). @return false when an entry for the key
     * already exists (ready or in-flight) — the existing entry wins.
     */
    bool seedCache(const std::string& bench, Technique t,
                   const std::optional<ExperimentOptions>& options,
                   SimResult result);

    /**
     * Bound the result cache (see CacheLimits). Entries an earlier
     * run()/runAll() call handed out by reference are pinned and never
     * evicted; in-flight (still computing) entries are never evicted
     * either, so eviction cannot race a single-flight compute. Takes
     * effect on the next completed simulation.
     */
    void setCacheLimits(const CacheLimits& limits);

    /** Cache-behaviour counters (hits/misses/evictions/size). */
    CacheStats cacheStats() const;

    /**
     * Warm the cache for @p spec concurrently; later run() calls hit
     * the cache. Sugar for discarding runAll's result.
     */
    void prefetch(const SweepSpec& spec);

    /** Benchmarks with meaningful FP activity (paper Fig. 9b filter). */
    static std::vector<std::string> fpBenchmarks();

    const ExperimentOptions& options() const { return opts_; }

    /** The pool batch jobs are scheduled on (nullptr = serial). */
    ThreadPool* pool() const { return pool_; }

  private:
    /**
     * A cache slot. Lives in a node-based map, so the entry reference
     * single-flight waiters hold stays valid while other threads
     * mutate the cache; the result itself is shared so eviction can
     * drop the slot without invalidating handed-out results.
     */
    struct CacheEntry
    {
        std::shared_ptr<SimResult> result;
        std::shared_ptr<const metrics::EpochSeries> series; ///< metered
        bool ready = false;     ///< single-flight: owner still running
        bool truncated = false; ///< hit maxCycles; re-warn on every hit
        bool pinned = false;    ///< handed out by reference; never evict
        unsigned waiters = 0;   ///< single-flight waiters parked on this
        std::uint64_t lastUse = 0; ///< LRU tick
        std::size_t bytes = 0;  ///< approximate footprint
    };

    static std::string key(const std::string& bench, Technique t,
                           const ExperimentOptions& opts);

    /**
     * Core of run()/runShared()/runMetered(); @p pin marks the entry
     * unevictable, @p meter attaches a collector on miss and fills
     * @p series_out (non-null only for metered callers).
     */
    std::shared_ptr<const SimResult>
    runInternal(const std::string& bench, Technique t,
                const std::optional<ExperimentOptions>& options,
                bool pin, bool meter,
                std::shared_ptr<const metrics::EpochSeries>* series_out);

    /** Evict LRU entries until within limits_ (requires mu_ held). */
    void enforceLimitsLocked() WG_REQUIRES(mu_);

    ExperimentOptions opts_;
    ThreadPool* pool_;
    mutable Mutex mu_;
    CondVar ready_cv_;
    std::map<std::string, CacheEntry> cache_ WG_GUARDED_BY(mu_);
    CacheLimits limits_ WG_GUARDED_BY(mu_);
    CacheStats stats_ WG_GUARDED_BY(mu_); ///< entries/bytes kept current
    std::uint64_t use_tick_ WG_GUARDED_BY(mu_) = 0;
};

/**
 * Runtime of @p r normalised to @p baseline (>1 = slower). The paper's
 * Fig. 10 plots the inverse (normalised performance); use
 * 1/normalizedRuntime for that.
 */
double normalizedRuntime(const SimResult& r, const SimResult& baseline);

} // namespace wg

