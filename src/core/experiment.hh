/**
 * @file
 * Experiment runner: the entry point the benches, examples and
 * integration tests share. Runs (benchmark x technique) simulations
 * and provides suite-level helpers (normalisation against baselines,
 * FP-benchmark filtering, result caching within one process).
 */

#ifndef WG_CORE_EXPERIMENT_HH
#define WG_CORE_EXPERIMENT_HH

#include <map>
#include <string>
#include <vector>

#include "core/presets.hh"
#include "sim/gpu.hh"
#include "workload/profile.hh"

namespace wg {

/** Runs simulations and caches results keyed by (bench, config). */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(const ExperimentOptions& opts = {});

    /** Run one benchmark under one technique (cached). */
    const SimResult& run(const std::string& bench, Technique t);

    /**
     * Run one benchmark under explicit options (cached); used by the
     * sensitivity and idle-detect sweeps.
     */
    const SimResult& run(const std::string& bench, Technique t,
                         const ExperimentOptions& opts);

    /** Benchmarks with meaningful FP activity (paper Fig. 9b filter). */
    static std::vector<std::string> fpBenchmarks();

    const ExperimentOptions& options() const { return opts_; }

  private:
    static std::string key(const std::string& bench, Technique t,
                           const ExperimentOptions& opts);

    ExperimentOptions opts_;
    std::map<std::string, SimResult> cache_;
};

/**
 * Runtime of @p r normalised to @p baseline (>1 = slower). The paper's
 * Fig. 10 plots the inverse (normalised performance); use
 * 1/normalizedRuntime for that.
 */
double normalizedRuntime(const SimResult& r, const SimResult& baseline);

} // namespace wg

#endif // WG_CORE_EXPERIMENT_HH
