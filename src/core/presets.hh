/**
 * @file
 * Technique presets matching the naming convention of the paper's
 * evaluation (Section 7.2):
 *
 *   Baseline             two-level scheduler, no power gating
 *   ConvPG               two-level scheduler + conventional gating
 *   GATES                GATES scheduler + conventional gating
 *   NaiveBlackout        GATES + naive blackout
 *   CoordinatedBlackout  GATES + coordinated blackout
 *   WarpedGates          GATES + coordinated blackout + adaptive
 *                        idle detect
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.hh"

namespace wg {

/** The evaluated techniques. */
enum class Technique : std::uint8_t {
    Baseline,
    ConvPG,
    Gates,
    NaiveBlackout,
    CoordinatedBlackout,
    WarpedGates,
};

/** Printable technique name (paper spelling). */
const char* techniqueName(Technique t);

/** All techniques, in the paper's presentation order. */
const std::vector<Technique>& allTechniques();

/** Experiment-level knobs shared by all harnesses. */
struct ExperimentOptions
{
    unsigned numSms = 6;      ///< SMs simulated (results are per-SM
                              ///< homogeneous; fewer SMs = faster)
    std::uint64_t seed = 1;   ///< workload + latency seed
    Cycle idleDetect = 5;     ///< default idle-detect window (§7.1)
    Cycle breakEven = 14;     ///< default break-even time (§7.1)
    Cycle wakeupDelay = 3;    ///< default wakeup delay (§7.1)
};

/**
 * Build the full GPU configuration for a technique.
 * PG parameters come from @p opts so the sensitivity benches (Fig. 11)
 * can sweep them.
 */
GpuConfig makeConfig(Technique t, const ExperimentOptions& opts = {});

} // namespace wg

