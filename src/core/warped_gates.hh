/**
 * @file
 * Umbrella header: the library's public API.
 *
 * A downstream user typically needs only:
 *
 *   #include "core/warped_gates.hh"
 *
 *   wg::ExperimentRunner runner;
 *   const wg::SimResult& base =
 *       runner.run("hotspot", wg::Technique::Baseline);
 *   const wg::SimResult& warped =
 *       runner.run("hotspot", wg::Technique::WarpedGates);
 *   double savings = warped.intEnergy.staticSavingsRatio();
 *
 * For custom microarchitectures or workloads, build a GpuConfig (or
 * start from makeConfig) and drive wg::Gpu / wg::Sm directly.
 */

#pragma once

#include "arch/instr.hh"
#include "arch/program.hh"
#include "common/histogram.hh"
#include "common/logging.hh"
#include "common/mathutil.hh"
#include "common/table.hh"
#include "common/threadpool.hh"
#include "core/experiment.hh"
#include "core/presets.hh"
#include "pg/controller.hh"
#include "power/area.hh"
#include "power/energymodel.hh"
#include "sim/gpu.hh"
#include "sim/sm.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"
#include "workload/synthetic.hh"

