/**
 * @file
 * Oracle power-gating upper bound.
 *
 * An oracle controller knows every idle period's length in advance: it
 * gates instantly (no idle-detect loss) at the start of any idle period
 * at least as long as the break-even time, and never gates shorter
 * ones. Its net savings over a measured idle-period histogram is the
 * ceiling any realisable controller (conventional, Blackout, Warped
 * Gates) can reach on that execution — useful to report how much
 * headroom each technique leaves.
 */

#pragma once

#include "common/histogram.hh"
#include "common/types.hh"

namespace wg {

/**
 * Net gateable cycles under the oracle policy: sum over idle periods of
 * length L >= @p bet of (L - bet) (each gating instance still pays the
 * break-even overhead). Periods inside the histogram's overflow bin are
 * handled exactly via the recorded sample sum.
 */
std::uint64_t oracleNetGatedCycles(const Histogram& idle_hist, Cycle bet);

/**
 * Oracle static-savings ratio for a unit observed for
 * @p total_unit_cycles cycles (e.g. clusters x SM cycles).
 */
double oracleStaticSavings(const Histogram& idle_hist, Cycle bet,
                           std::uint64_t total_unit_cycles);

} // namespace wg

