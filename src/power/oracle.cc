#include "oracle.hh"

namespace wg {

std::uint64_t
oracleNetGatedCycles(const Histogram& idle_hist, Cycle bet)
{
    std::uint64_t net = 0;

    // Exact bins.
    std::uint64_t binned_sum = 0;
    for (std::uint64_t b = 0; b <= idle_hist.maxBin(); ++b) {
        std::uint64_t n = idle_hist.bin(b);
        binned_sum += b * n;
        if (b >= bet)
            net += (b - bet) * n;
    }

    // Overflow periods: all longer than maxBin. Their total length is
    // recoverable from the histogram's sample sum; each pays `bet`.
    std::uint64_t overflow_count = idle_hist.overflow();
    if (overflow_count > 0) {
        std::uint64_t overflow_sum = idle_hist.sum() - binned_sum;
        std::uint64_t cost = bet * overflow_count;
        if (idle_hist.maxBin() >= bet) {
            net += overflow_sum - cost; // every overflow period > bet
        } else if (overflow_sum > cost) {
            net += overflow_sum - cost;
        }
    }
    return net;
}

double
oracleStaticSavings(const Histogram& idle_hist, Cycle bet,
                    std::uint64_t total_unit_cycles)
{
    if (total_unit_cycles == 0)
        return 0.0;
    return static_cast<double>(oracleNetGatedCycles(idle_hist, bet)) /
           static_cast<double>(total_unit_cycles);
}

} // namespace wg
