/**
 * @file
 * Energy accounting over power-gating statistics.
 *
 * All energies are computed post-hoc from cycle/event counters, which
 * keeps the hot simulation loop free of floating-point work and makes
 * the accounting identities easy to test:
 *
 *   staticConsumed + staticSaved == totalCycles * P_static   (per unit)
 *   overhead == gatingEvents * BET * P_static                (by BET def.)
 */

#pragma once

#include <cstdint>

#include "pg/domain.hh"
#include "power/constants.hh"

namespace wg {

/** Energy ledger for one unit (cluster or per-SM block). */
struct UnitEnergy
{
    Joule dynamicE = 0.0;   ///< switching energy of executed work
    Joule staticE = 0.0;    ///< leakage actually consumed
    Joule overheadE = 0.0;  ///< sleep-transistor switching overhead
    Joule staticSaved = 0.0; ///< leakage avoided while gated
    Joule staticNoPg = 0.0; ///< leakage a no-gating baseline would burn

    /** Total energy consumed (what the wall sees). */
    Joule
    total() const
    {
        return dynamicE + staticE + overheadE;
    }

    /**
     * Net static-energy savings ratio relative to the no-gating
     * baseline (Fig. 9's y-axis). Negative when overhead exceeds
     * savings. Returns 0 when the baseline is zero.
     */
    double
    staticSavingsRatio() const
    {
        if (staticNoPg <= 0.0)
            return 0.0;
        return (staticSaved - overheadE) / staticNoPg;
    }

    /** Accumulate another ledger. */
    void
    add(const UnitEnergy& other)
    {
        dynamicE += other.dynamicE;
        staticE += other.staticE;
        overheadE += other.overheadE;
        staticSaved += other.staticSaved;
        staticNoPg += other.staticNoPg;
    }
};

/**
 * Computes UnitEnergy ledgers from simulation counters.
 */
class EnergyModel
{
  public:
    explicit EnergyModel(const PowerConstants& constants = {});

    /**
     * Ledger for one gateable cluster.
     * @param uc unit class (Int or Fp)
     * @param stats the cluster's power-gating counters
     * @param issues warp instructions the cluster executed
     * @param total_cycles simulated cycles (for the no-PG reference)
     * @param bet break-even time used by the gating controller
     */
    UnitEnergy cluster(UnitClass uc, const PgDomainStats& stats,
                       std::uint64_t issues, Cycle total_cycles,
                       Cycle bet) const;

    /**
     * Ledger for an always-on unit (SFU, LD/ST): full leakage plus
     * per-op dynamic energy.
     */
    UnitEnergy alwaysOn(UnitClass uc, std::uint64_t issues,
                        Cycle total_cycles) const;

    const PowerConstants& constants() const { return constants_; }

  private:
    PowerConstants constants_;
};

} // namespace wg

