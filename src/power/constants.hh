/**
 * @file
 * GTX480 power-model constants, calibrated to the GPUWattch numbers the
 * paper quotes (Section 7.3): total on-chip leakage 26.87 W, of which
 * integer units 0.00557 W and floating-point units 4.40 W (execution
 * units = 16.38% of on-chip leakage), 15 SMs, two clusters per type per
 * SM, 700 MHz core clock.
 *
 * Dynamic per-warp-instruction energies are calibrated so that at the
 * suite-average utilisations the baseline (no power gating) energy
 * split reproduces Fig. 1b: static ~50% of INT-unit energy and ~90% of
 * FP-unit energy.
 */

#pragma once

#include "arch/instr.hh"
#include "common/types.hh"

namespace wg {

/** Per-cluster (and per-SM auxiliary unit) power constants. */
struct PowerConstants
{
    double clockHz = 700e6;     ///< core clock

    // --- static (leakage) power per gateable cluster ---
    Watt intClusterStatic = 0.00557 / 30.0;  ///< W per INT cluster
    Watt fpClusterStatic = 4.40 / 30.0;      ///< W per FP cluster

    // --- static power of the ungated per-SM units ---
    Watt sfuStatic = 0.110 / 15.0;  ///< SFU block (2.5% of exec static)
    Watt ldstStatic = 0.005;        ///< LD/ST pipeline block

    // --- dynamic energy per warp-instruction executed ---
    Joule intDynPerOp = 0.90e-12;   ///< J per INT warp instruction
    Joule fpDynPerOp = 195e-12;     ///< J per FP warp instruction
    Joule sfuDynPerOp = 320e-12;    ///< J per SFU warp instruction
    Joule ldstDynPerOp = 60e-12;    ///< J per LDST warp instruction

    // --- chip-level context (Section 7.3 roll-up) ---
    Watt chipLeakage = 26.87;       ///< total on-chip leakage
    unsigned numSms = 15;

    /** Static energy per cycle of one cluster/unit of class @p uc. */
    Joule
    staticPerCycle(UnitClass uc) const
    {
        Watt p = 0.0;
        switch (uc) {
          case UnitClass::Int: p = intClusterStatic; break;
          case UnitClass::Fp: p = fpClusterStatic; break;
          case UnitClass::Sfu: p = sfuStatic; break;
          case UnitClass::Ldst: p = ldstStatic; break;
        }
        return p / clockHz;
    }

    /** Dynamic energy per warp instruction of class @p uc. */
    Joule
    dynPerOp(UnitClass uc) const
    {
        switch (uc) {
          case UnitClass::Int: return intDynPerOp;
          case UnitClass::Fp: return fpDynPerOp;
          case UnitClass::Sfu: return sfuDynPerOp;
          case UnitClass::Ldst: return ldstDynPerOp;
        }
        return 0.0;
    }
};

} // namespace wg

