#include "area.hh"

namespace wg {

AreaModel::AreaModel()
{
    // Storage inventory from Section 6 (per SM):
    //  - GATES: a 2-bit instruction-type field on each of the 32
    //    active-warp entries; four 5-bit ready counters; two 6-bit
    //    ACTV counters; a 2-bit current-priority register.
    //  - Blackout: one 5-bit break-even countdown per gateable cluster
    //    (two INT + two FP).
    //  - Adaptive idle detect: one critical-wakeup counter and one
    //    idle-detect register per unit type, plus a 10-bit epoch
    //    counter.
    specs_ = {
        {"active-entry type bits", "GATES", 2, 32},
        {"RDY counters (INT/FP/SFU/LDST)", "GATES", 5, 4},
        {"ACTV counters (INT/FP)", "GATES", 6, 2},
        {"priority register", "GATES", 2, 1},
        {"BET countdown counters", "Blackout", 5, 4},
        {"critical-wakeup counters", "Adaptive", 8, 2},
        {"idle-detect registers", "Adaptive", 4, 2},
        {"epoch counter", "Adaptive", 10, 1},
    };

    unsigned bits = 0;
    for (const auto& s : specs_)
        bits += s.bits * s.count;

    // Fit per-bit costs to the published synthesis totals.
    area_per_bit_ = 1210.8 / bits;
    dynamic_per_bit_ = 1.55e-3 / bits;
    leakage_per_bit_ = 1.21e-5 / bits;
}

HardwareOverhead
AreaModel::compute() const
{
    HardwareOverhead hw;
    for (const auto& s : specs_)
        hw.totalBits += s.bits * s.count;
    hw.areaUm2 = hw.totalBits * area_per_bit_;
    hw.dynamicW = hw.totalBits * dynamic_per_bit_;
    hw.leakageW = hw.totalBits * leakage_per_bit_;
    hw.areaFraction = hw.areaUm2 / kSmAreaUm2;
    hw.dynamicFraction = hw.dynamicW / kSmDynamicW;
    hw.leakageFraction = hw.leakageW / kSmLeakageW;
    return hw;
}

} // namespace wg
