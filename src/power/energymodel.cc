#include "energymodel.hh"

namespace wg {

EnergyModel::EnergyModel(const PowerConstants& constants)
    : constants_(constants)
{
}

UnitEnergy
EnergyModel::cluster(UnitClass uc, const PgDomainStats& stats,
                     std::uint64_t issues, Cycle total_cycles,
                     Cycle bet) const
{
    UnitEnergy e;
    const Joule p_st = constants_.staticPerCycle(uc);

    // Leakage flows whenever the sleep transistor is on: busy cycles,
    // powered-idle cycles, and the wakeup ramp.
    const std::uint64_t leaking =
        stats.busyCycles + stats.idleOnCycles + stats.wakeupCycles;
    e.staticE = static_cast<double>(leaking) * p_st;
    e.staticSaved = static_cast<double>(stats.gatedCycles()) * p_st;

    // E_overhead per gating instance is, by the definition of the
    // break-even time, exactly BET cycles of leakage (Fig. 2b).
    e.overheadE = static_cast<double>(stats.gatingEvents) *
                  static_cast<double>(bet) * p_st;

    e.dynamicE = static_cast<double>(issues) * constants_.dynPerOp(uc);
    e.staticNoPg = static_cast<double>(total_cycles) * p_st;
    return e;
}

UnitEnergy
EnergyModel::alwaysOn(UnitClass uc, std::uint64_t issues,
                      Cycle total_cycles) const
{
    UnitEnergy e;
    const Joule p_st = constants_.staticPerCycle(uc);
    e.staticE = static_cast<double>(total_cycles) * p_st;
    e.staticNoPg = e.staticE;
    e.dynamicE = static_cast<double>(issues) * constants_.dynPerOp(uc);
    return e;
}

} // namespace wg
