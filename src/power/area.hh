/**
 * @file
 * Hardware-overhead model for the microarchitectural counters the
 * proposal adds (paper Section 7.5).
 *
 * The paper implements the counters in Verilog and synthesises them
 * with the NCSU FreePDK 45nm library, reporting: SM area 48.1 mm2,
 * counters 1210.8 um2 (0.003% area); SM dynamic power 1.92 W and
 * leakage 1.61 W vs. counter dynamic 1.55 mW and leakage 12.1 uW.
 * We reproduce those totals from an explicit inventory of the storage
 * the design adds (Section 6), with per-bit flop costs fitted to the
 * published totals.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wg {

/** One added hardware structure and its per-SM bit count. */
struct CounterSpec
{
    std::string name;       ///< e.g. "INT_RDY counter"
    std::string mechanism;  ///< GATES / Blackout / Adaptive
    unsigned bits;          ///< storage bits per SM
    unsigned count;         ///< instances per SM
};

/** Totals of the overhead model. */
struct HardwareOverhead
{
    unsigned totalBits = 0;
    double areaUm2 = 0.0;
    double dynamicW = 0.0;
    double leakageW = 0.0;
    double areaFraction = 0.0;     ///< vs. SM area
    double dynamicFraction = 0.0;  ///< vs. SM dynamic power
    double leakageFraction = 0.0;  ///< vs. SM leakage power
};

/**
 * Counter-overhead model with FreePDK-45nm-fitted per-bit costs.
 */
class AreaModel
{
  public:
    AreaModel();

    /** The full inventory of structures Section 6 adds. */
    const std::vector<CounterSpec>& inventory() const { return specs_; }

    /** Totals across the inventory, per SM. */
    HardwareOverhead compute() const;

    // Published SM reference numbers (GPUWattch / Section 7.5).
    static constexpr double kSmAreaUm2 = 48.1e6;
    static constexpr double kSmDynamicW = 1.92;
    static constexpr double kSmLeakageW = 1.61;

  private:
    std::vector<CounterSpec> specs_;
    double area_per_bit_;     ///< um2 per flop bit
    double dynamic_per_bit_;  ///< W per flop bit
    double leakage_per_bit_;  ///< W per flop bit
};

} // namespace wg

